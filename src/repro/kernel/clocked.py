"""The clocked fast-path engine.

:class:`ClockedEngine` implements
:class:`~repro.kernel.engine.SimulationEngine` for the common case this
repository actually simulates: a *single-clock synchronous* platform.  The
paper's Figure 2 optimisations all reduce kernel work per simulated cycle;
this engine removes the kernel work that remains even after those
optimisations, without touching the models:

* **No timed priority queue for clock edges.**  A free-running
  :class:`~repro.signals.clock.Clock` offers itself to the engine at
  construction (:meth:`adopt_clock`); the engine then produces its edges
  arithmetically -- next edge time is an addition, not a heap push/pop
  pair, and the clock's self-scheduling callback never runs.

* **Bucketed event wheel for everything else.**  The remaining timed
  notifications (UART multicycle sleeps, gated-slave re-arms, method
  ``next_trigger`` timeouts) overwhelmingly land on clock-period
  multiples.  They are stored in per-timestamp buckets (a dict) with a
  small heap of *distinct* timestamps, so n same-cycle notifications cost
  one heap operation instead of n.  Cancellation is lazy: a bucket entry
  whose event no longer has a matching pending notification is skipped
  when its time matures.

* **Precomputed static activation schedules.**  For each adopted clock
  edge the engine caches the statically sensitive processes, partitioned
  by process kind (invalidated by the event's ``_static_version``).  The
  edge events still go through the delta queue -- preserving the generic
  engine's phase ordering between coincident timed wakeups and
  edge-sensitive processes -- but their dispatch runs off the cached
  schedule: processes in the common state (a method with no
  ``next_trigger`` override, a thread suspended on its static
  sensitivity) are queued runnable inline, skipping ``trigger_processes``
  -> ``trigger_static`` -> ``_make_runnable``; anything else falls back
  to the exact generic path.

* **No queueing of unobserved notifications.**  A delta notification
  raised by a channel update for an event with no sensitive and no
  waiting processes is dropped at the source instead of being queued and
  dispatched to nobody -- in native data mode most bus-signal
  value-changed events are in this category every single cycle.  (Only
  update-phase notifications qualify: no model code runs between the
  update phase and the delta dispatch, so no subscriber can appear in
  between.)  An unobserved falling clock edge does not even end the time
  step.

The architectural results -- executed instructions, boot console output,
register state -- are identical to the generic engine's by construction:
the evaluation/update/delta semantics are inherited unchanged, edge
notifications keep their delta-phase timing, and only the plumbing that
feeds the runnable queue is specialised.  (Activation *order* within one
evaluation phase may differ between engines, exactly as it may between
two standards-conforming SystemC kernels; each engine on its own is fully
deterministic.)
"""

from __future__ import annotations

import heapq
from typing import Optional

from .engine import ENGINE_CLOCKED, SimulationEngine
from .errors import KernelError
from .events import Event
from .process import MethodProcess, ThreadProcess
from .simtime import _as_ps


class _AdoptedClock:
    """Engine-side record of a clock whose edges the engine generates."""

    __slots__ = ("clock", "next_edge_ps")

    def __init__(self, clock, next_edge_ps: int) -> None:
        self.clock = clock
        self.next_edge_ps: Optional[int] = next_edge_ps


class ClockedEngine(SimulationEngine):
    """Fast-path engine for single-clock synchronous models."""

    kind = ENGINE_CLOCKED

    def __init__(self, name: str = "sim") -> None:
        super().__init__(name)
        #: time_ps -> list of due items (Event or bare callable).
        self._buckets: dict[int, list] = {}
        #: Min-heap of the distinct timestamps present in ``_buckets``.
        self._bucket_heap: list[int] = []
        self._adopted: list[_AdoptedClock] = []
        #: Edge event -> (static_version, methods, threads, others); the
        #: precomputed activation schedules, consulted at dispatch time.
        self._edge_plans: dict[Event, tuple] = {}
        # True only while channel updates are being committed; see
        # _queue_delta_notification.
        self._in_update_phase = False

    # ------------------------------------------------------------------ #
    # clock adoption
    # ------------------------------------------------------------------ #
    def adopt_clock(self, clock, first_delay_ps: int) -> bool:
        """Take over edge generation for a free-running clock."""
        self._adopted.append(
            _AdoptedClock(clock, self.time_ps + first_delay_ps))
        # Register the edge events for schedule-based dispatch; the stale
        # version forces a plan build on first use.
        stale = -1
        for event in (clock._posedge_event, clock._negedge_event):
            self._edge_plans[event] = (stale, (), (), ())
        return True

    # ------------------------------------------------------------------ #
    # timed notifications: the bucketed wheel
    # ------------------------------------------------------------------ #
    def _enqueue(self, time_ps: int, item) -> None:
        bucket = self._buckets.get(time_ps)
        if bucket is None:
            self._buckets[time_ps] = [item]
            heapq.heappush(self._bucket_heap, time_ps)
        else:
            bucket.append(item)

    def _queue_timed_notification(self, time_ps: int, event: Event) -> None:
        self._enqueue(time_ps, event)

    def schedule_action(self, delay, action) -> None:
        """Schedule a bare callable to run at ``now + delay``."""
        self._enqueue(self.time_ps + _as_ps(delay), action)

    def _cancel_timed_notification(self, event: Event) -> None:
        # Lazy cancellation: the stale bucket entry is detected when its
        # time matures, because the event's pending notification no longer
        # names that timestamp (Event.cancel resets ``_pending_kind``
        # before calling here).
        return

    def _has_timed_activity(self) -> bool:
        if self._buckets:
            return True
        return any(entry.next_edge_ps is not None and entry.clock._running
                   for entry in self._adopted)

    def _clear_timed_state(self) -> None:
        # Adopted clocks and edge plans survive a restore reset: the clock
        # objects were re-created by fresh elaboration and their arithmetic
        # edge state is re-aimed via restore_clock_edge.
        self._buckets.clear()
        self._bucket_heap.clear()

    def restore_clock_edge(self, clock, next_edge_ps: int) -> None:
        for entry in self._adopted:
            if entry.clock is clock:
                entry.next_edge_ps = next_edge_ps
                return
        raise KernelError(
            f"restore_clock_edge: clock {clock.name!r} was never adopted")

    # ------------------------------------------------------------------ #
    # delta notifications: drop what nobody observes
    # ------------------------------------------------------------------ #
    def _queue_delta_notification(self, event: Event) -> None:
        if event._static_procs or event._dynamic_procs \
                or not self._in_update_phase:
            self._delta_events.append(event)
        else:
            # Nobody is watching and the notification comes from a channel
            # update: no model code runs between the update phase and the
            # delta dispatch, so no process can still subscribe before the
            # notification would be delivered -- it can be dropped.  (A
            # notification raised during the *evaluation* phase must be
            # queued even without subscribers, because a process running
            # later in the same phase may start waiting on the event.)
            # Reset the pending marker notify_delta() just set so later
            # notifications of the event are not swallowed.
            event._pending_kind = None

    def _update_phase(self) -> None:
        # Same commit loop as the base engine, wrapped in the update-phase
        # flag so _queue_delta_notification knows when an unobserved
        # notification is safely droppable.
        queue = self._update_queue
        self._update_queue = []
        self.stats.channel_updates += len(queue)
        self._in_update_phase = True
        try:
            for channel in queue:
                channel._update_requested = False
                channel._update()
        finally:
            self._in_update_phase = False

    # ------------------------------------------------------------------ #
    # time advance
    # ------------------------------------------------------------------ #
    def _advance_time(self, end_time: Optional[int], stats) -> bool:
        buckets = self._buckets
        bucket_heap = self._bucket_heap
        adopted = self._adopted
        while True:
            # Bulk edge skip: while the quantum fast path has every
            # clock-driven process detached, a clock's edge events have no
            # subscribers and every edge before the next *observable*
            # activity -- a bucketed notification (typically the quantum's
            # single timed wait), the run-window end, or an edge of a clock
            # somebody does watch -- would be a silent step.  Produce those
            # edges arithmetically in one batch instead of iterating the
            # loop per half-period.  Only a running process can subscribe,
            # and processes only run at observable activations, so a silent
            # clock cannot gain a subscriber before ``limit``; silent
            # clocks cannot wake anything, so they do not constrain each
            # other (this is what lets every node clock of a warping
            # multi-node cluster skip at once).
            if adopted:
                limit = bucket_heap[0] if bucket_heap else None
                if end_time is not None and (limit is None
                                             or end_time < limit):
                    limit = end_time
                silent = None
                for entry in adopted:
                    clock = entry.clock
                    t = entry.next_edge_ps
                    if t is None or not clock._running:
                        continue
                    if (clock._posedge_event._static_procs
                            or clock._posedge_event._dynamic_procs
                            or clock._negedge_event._static_procs
                            or clock._negedge_event._dynamic_procs
                            or clock._changed_event._static_procs
                            or clock._changed_event._dynamic_procs):
                        if limit is None or t < limit:
                            limit = t
                    elif silent is None:
                        silent = [entry]
                    else:
                        silent.append(entry)
                if silent is not None and limit is not None:
                    for entry in silent:
                        t = entry.next_edge_ps
                        if t >= limit:
                            continue
                        clock = entry.clock
                        value = clock._value
                        high_ps = clock.high_ps
                        low_ps = clock.low_ps
                        period_ps = high_ps + low_ps
                        pos = neg = 0
                        if value and t < limit:
                            value = False
                            neg += 1
                            t += low_ps
                        if not value and t < limit:
                            # Skip whole periods (rising at t, falling at
                            # t+high) whose edges all mature before limit.
                            span = limit - t
                            if span > high_ps:
                                whole = (span - high_ps - 1) // period_ps \
                                    + 1
                                pos += whole
                                neg += whole
                                t += whole * period_ps
                        while t < limit:
                            if value:
                                value = False
                                neg += 1
                                t += low_ps
                            else:
                                value = True
                                pos += 1
                                t += high_ps
                        if pos or neg:
                            clock._value = value
                            clock.posedge_count += pos
                            clock.negedge_count += neg
                            entry.next_edge_ps = t
                            stats.edges_skipped += pos + neg
            next_time = bucket_heap[0] if bucket_heap else None
            for entry in adopted:
                edge_time = entry.next_edge_ps
                if edge_time is not None and (next_time is None
                                              or edge_time < next_time):
                    next_time = edge_time
            if next_time is None:
                self._finished = True
                return False
            if end_time is not None and next_time > end_time:
                self.time_ps = end_time
                return False
            self.time_ps = next_time
            stats.timed_steps += 1
            work = False
            # Bucketed notifications run first; the clock edges below are
            # delta-notified, so their processes run after anything a
            # timed notification wakes directly -- the same phase ordering
            # the generic engine produces.
            if bucket_heap and bucket_heap[0] == next_time:
                heapq.heappop(bucket_heap)
                for item in buckets.pop(next_time):
                    # Lazily-cancelled / superseded notifications are
                    # skipped inside the shared delivery helper.
                    self._deliver_timed_item(item, next_time, stats)
                work = True
            # Decide once how this step's edge events are delivered: with
            # anything runnable or queued, they must take the delta queue
            # (a process running first could still subscribe, and edge
            # processes must start one delta later); on a pure edge step,
            # dispatching immediately is indistinguishable -- nothing can
            # run, subscribe or commit a value before the delta phase
            # would have dispatched them.
            defer = bool(self._runnable or self._delta_events
                         or self._update_queue)
            for entry in adopted:
                if entry.next_edge_ps == next_time:
                    clock = entry.clock
                    if not defer and clock._value and clock._running:
                        # Silent falling edge fast path: nothing coincides
                        # and (in the overwhelmingly common case) nobody
                        # watches the falling side, so the whole
                        # _fire_edge call is skipped.
                        negedge = clock._negedge_event
                        changed = clock._changed_event
                        if not (negedge._static_procs
                                or negedge._dynamic_procs
                                or changed._static_procs
                                or changed._dynamic_procs):
                            clock._value = False
                            clock.negedge_count += 1
                            entry.next_edge_ps = next_time + clock.low_ps
                            continue
                    if self._fire_edge(entry, defer, stats):
                        work = True
            if work or self._runnable or self._update_queue \
                    or self._delta_events:
                return True
            # Silent step (typically an unobserved falling edge): keep
            # advancing without bouncing through the empty delta loop.

    # ------------------------------------------------------------------ #
    # clock edges
    # ------------------------------------------------------------------ #
    def _fire_edge(self, entry: _AdoptedClock, defer: bool, stats) -> bool:
        """Produce one clock edge and deliver its notifications.

        Exactly like the generic engine's ``Clock._edge`` callback, the
        edge events are *delta-notified*: with ``defer`` (coincident
        activity this step) they take the delta queue so their processes
        run one delta after anything a timed notification woke; on a pure
        edge step they dispatch immediately, which is equivalent and skips
        the empty first delta iteration.  Events with no subscribers are
        queued only under ``defer`` (a process running first could still
        subscribe before dispatch); otherwise they are dropped unfired.
        """
        clock = entry.clock
        if not clock._running:
            entry.next_edge_ps = None
            return False
        rising = not clock._value
        clock._value = rising
        if rising:
            clock.posedge_count += 1
            entry.next_edge_ps = self.time_ps + clock.high_ps
            edge_event = clock._posedge_event
        else:
            clock.negedge_count += 1
            entry.next_edge_ps = self.time_ps + clock.low_ps
            edge_event = clock._negedge_event
        work = False
        for event in (clock._changed_event, edge_event):
            if defer:
                # Delivery and the late-subscriber window are handled by
                # the delta dispatch, exactly as in the generic engine.
                self._delta_events.append(event)
                work = True
            elif event._static_procs or event._dynamic_procs:
                work = True
                stats.events_notified += 1
                plan = self._edge_plans.get(event)
                if plan is None:
                    event.trigger_processes()
                else:
                    if plan[0] != event._static_version:
                        plan = self._build_edge_plan(event)
                        self._edge_plans[event] = plan
                    self._execute_edge_plan(event, plan)
        return work

    # ------------------------------------------------------------------ #
    # delta dispatch with precomputed activation schedules
    # ------------------------------------------------------------------ #
    def _delta_notification_phase(self) -> None:
        events = self._delta_events
        self._delta_events = []
        self.stats.events_notified += len(events)
        plans = self._edge_plans
        for event in events:
            plan = plans.get(event)
            if plan is None:
                event.trigger_processes()
                continue
            if plan[0] != event._static_version:
                plan = self._build_edge_plan(event)
                plans[event] = plan
            self._dispatch_edge_plan(event, plan)

    def _dispatch_edge_plan(self, event: Event, plan: tuple) -> None:
        """Trigger an edge event's processes from its cached schedule.

        Equivalent to ``Event.trigger_processes`` with the static list
        pre-partitioned by process kind so the common states are handled
        inline (a method with no ``next_trigger`` override, a thread
        suspended on its static sensitivity); anything else falls back to
        the exact generic path.
        """
        event._pending_kind = None
        __, methods, threads, others = plan
        runnable = self._runnable
        for process in methods:
            # Inlined MethodProcess.trigger_static + _make_runnable for
            # the common no-override case.
            if process._timeout_armed \
                    or process._next_trigger_override is not None:
                process.trigger_static(event)
            elif not (process._runnable_queued or process.terminated):
                process._runnable_queued = True
                runnable.append(process)
        for process in threads:
            # Inlined ThreadProcess.trigger_static + _make_runnable.
            if process._waiting_static and not (
                    process._runnable_queued or process.terminated):
                process._runnable_queued = True
                runnable.append(process)
        for process in others:
            process.trigger_static(event)
        if event._dynamic_procs:
            waiting = event._dynamic_procs
            event._dynamic_procs = []
            for process in waiting:
                process.trigger_dynamic(event)

    def _execute_edge_plan(self, event: Event, plan: tuple) -> None:
        """Run an edge event's schedule directly, without queueing.

        Only used on a pure edge step, where the runnable queue is empty:
        executing the scheduled processes in place is then equivalent to
        queueing them and draining the queue (any process they make
        runnable -- immediate notifications, dynamic wakes -- lands in the
        runnable queue and is executed by the normal evaluation phase
        right after), but saves one queue append + pop per process per
        cycle.  Processes in an unusual state (``next_trigger`` override,
        already queued, not suspended on static sensitivity) take the
        generic trigger path instead.  The inlined execute bodies are kept
        in lock-step with process.py; tests/test_engine.py pins the
        equivalence for every wait-spec kind.
        """
        event._pending_kind = None
        __, methods, threads, others = plan
        stats = self.stats
        trace = self._activation_trace
        activations = 0
        for index, process in enumerate(methods):
            if self._stop_requested:
                # Behave as if the rest had been queued: they were
                # notified, so they must run when the simulation resumes.
                for remaining in methods[index:]:
                    remaining.trigger_static(event)
                break
            if process._timeout_armed \
                    or process._next_trigger_override is not None:
                process.trigger_static(event)
            elif not (process._runnable_queued or process.terminated):
                activations += 1
                if trace is not None:
                    trace.append(process.name)
                if process._waiting_dynamic:
                    process._clear_dynamic_wait()
                process._next_trigger_override = None
                process.activation_count += 1
                self._current_process = process
                try:
                    process.func()
                finally:
                    self._current_process = None
        for index, process in enumerate(threads):
            if self._stop_requested:
                for remaining in threads[index:]:
                    remaining.trigger_static(event)
                break
            if not (process._waiting_static
                    and not process._runnable_queued
                    and not process.terminated):
                process.trigger_static(event)
            elif process._started and process._generator is not None:
                activations += 1
                if trace is not None:
                    trace.append(process.name)
                process._waiting_static = False
                process._waiting_time = False
                if process._waiting_dynamic:
                    process._clear_dynamic_wait()
                process.activation_count += 1
                self._current_process = process
                try:
                    try:
                        spec = next(process._generator)
                    except StopIteration:
                        process.terminated = True
                        process.clear_sensitivity()
                    else:
                        if spec is None:
                            if not process.static_sensitivity:
                                raise KernelError(
                                    f"thread {process.name!r} waited on "
                                    f"static sensitivity but has no "
                                    f"sensitivity list")
                            process._waiting_static = True
                        else:
                            process._arm_wait(spec)
                finally:
                    self._current_process = None
            else:
                # Not yet started (or a plain-function thread): let the
                # full execute() handle the first activation.
                activations += 1
                if trace is not None:
                    trace.append(process.name)
                process.execute()
        stats.process_activations += activations
        # Triggering (as opposed to executing) continues even on stop:
        # in the generic engine the whole notification is delivered
        # atomically at dispatch, and stop only interrupts execution.
        for process in others:
            process.trigger_static(event)
        if event._dynamic_procs:
            waiting = event._dynamic_procs
            event._dynamic_procs = []
            for process in waiting:
                process.trigger_dynamic(event)

    # ------------------------------------------------------------------ #
    # evaluation phase with an inlined method-process fast path
    # ------------------------------------------------------------------ #
    def _evaluation_phase(self) -> None:
        stats = self.stats
        runnable = self._runnable
        popleft = runnable.popleft
        trace = self._activation_trace
        activations = 0
        while runnable:
            process = popleft()
            activations += 1
            if trace is not None:
                trace.append(process.name)
            process_type = type(process)
            if process_type is MethodProcess:
                # Inlined MethodProcess.execute (one call frame fewer per
                # activation, the single hottest dispatch in a synchronous
                # model).  Kept in lock-step with process.py.
                process._runnable_queued = False
                if not process.terminated:
                    if process._waiting_dynamic:
                        process._clear_dynamic_wait()
                    process._next_trigger_override = None
                    process.activation_count += 1
                    self._current_process = process
                    try:
                        process.func()
                    finally:
                        self._current_process = None
            elif process_type is ThreadProcess and process._started \
                    and process._generator is not None:
                # Inlined ThreadProcess.execute + _advance for a running
                # generator, with the dominant wait specification -- plain
                # ``yield None`` (suspend on static sensitivity) -- handled
                # without a further call.  Kept in lock-step with process.py.
                process._runnable_queued = False
                if not process.terminated:
                    process._waiting_static = False
                    process._waiting_time = False
                    if process._waiting_dynamic:
                        process._clear_dynamic_wait()
                    process.activation_count += 1
                    self._current_process = process
                    try:
                        try:
                            spec = next(process._generator)
                        except StopIteration:
                            process.terminated = True
                            process.clear_sensitivity()
                        else:
                            if spec is None:
                                if not process.static_sensitivity:
                                    raise KernelError(
                                        f"thread {process.name!r} waited on "
                                        f"static sensitivity but has no "
                                        f"sensitivity list")
                                process._waiting_static = True
                            else:
                                process._arm_wait(spec)
                    finally:
                        self._current_process = None
            else:
                process.execute()
            if self._stop_requested:
                break
        stats.process_activations += activations

    def _build_edge_plan(self, event: Event) -> tuple:
        methods, threads, others = [], [], []
        for process in event._static_procs:
            process_type = type(process)
            if process_type is MethodProcess:
                methods.append(process)
            elif process_type is ThreadProcess:
                threads.append(process)
            else:
                others.append(process)
        return (event._static_version, tuple(methods), tuple(threads),
                tuple(others))
