"""The uniform component-state protocol.

Every stateful model object in the repository implements the same three
methods (:class:`SimComponent`):

* ``capture_state() -> dict`` -- a plain-data (picklable) snapshot of the
  component's *own* state, excluding children;
* ``restore_state(state)`` -- restore exactly what ``capture_state``
  returned;
* ``state_children() -> dict[str, SimComponent]`` -- the named stateful
  sub-components, in restore order.

Snapshots (``platform/snapshot.py``) are a generic walk over this tree:
:func:`capture_tree` records every component it can reach and
:func:`restore_tree` replays the recording.  No layer keeps a
hand-maintained list of component names, so a new peripheral that plugs
into its parent's ``state_children()`` is snapshotted automatically -- and
one that does not is caught by the reachability meta-test
(``tests/test_state_protocol.py``).

Scopes
------

Most state is *architectural*: it transfers across simulation engines and
bus/cpu abstraction levels (registers, memories, counters the experiment
reports).  A few components model observables that only exist at one bus
abstraction level -- the pin-level interconnect signals, the fabric's
protocol counters, the VCD tracer.  Those declare
``state_scope = SCOPE_BUS_LEVEL`` and :func:`restore_tree` skips their
subtree when a snapshot crosses bus levels.
"""

from __future__ import annotations

from typing import Iterator, Tuple

#: State that transfers across engines and abstraction levels.
SCOPE_ARCHITECTURAL = "architectural"
#: State that is only meaningful between platforms at the same bus level.
SCOPE_BUS_LEVEL = "bus_level"


class SimComponent:
    """Base class for the capture/restore/children state protocol.

    The defaults describe a stateless leaf: nothing to capture, nothing to
    restore, no children.  Subclasses override whichever parts apply.
    ``__slots__`` is empty so slotted classes can inherit without gaining
    a ``__dict__``.
    """

    __slots__ = ()

    #: See module docstring; one of :data:`SCOPE_ARCHITECTURAL` /
    #: :data:`SCOPE_BUS_LEVEL`.
    state_scope = SCOPE_ARCHITECTURAL

    def capture_state(self) -> dict:
        """Plain-data snapshot of this component's own state."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Restore the output of :meth:`capture_state`."""

    def state_children(self) -> dict:
        """Named stateful sub-components, in restore order."""
        return {}


def iter_components(root: SimComponent,
                    path: str = "") -> Iterator[Tuple[str, SimComponent]]:
    """Yield ``(dotted_path, component)`` for the whole tree under ``root``.

    The root itself is yielded with ``path`` (empty by default).
    """
    yield path, root
    for name, child in root.state_children().items():
        child_path = f"{path}.{name}" if path else name
        yield from iter_components(child, child_path)


def capture_tree(root: SimComponent) -> dict:
    """Recursively capture ``root`` and everything below it.

    Returns a nested plain-data structure::

        {"state": {...}, "children": {name: {...}, ...}}

    (the ``children`` key is omitted for leaves, keeping pickles compact).
    """
    node: dict = {"state": root.capture_state()}
    children = {name: capture_tree(child)
                for name, child in root.state_children().items()}
    if children:
        node["children"] = children
    return node


def restore_tree(root: SimComponent, node: dict,
                 include_bus_level: bool = True) -> None:
    """Restore a :func:`capture_tree` recording into ``root``.

    Children are matched *by name*: a recorded child the target does not
    have (or vice versa) is skipped, which is what lets an architectural
    snapshot cross abstraction levels -- e.g. a signal-level platform's
    arbiter node simply has no counterpart on a transaction-level target.
    With ``include_bus_level=False`` any component declaring
    ``state_scope = SCOPE_BUS_LEVEL`` is skipped together with its whole
    subtree (cross-bus-level restore keeps only architectural state).

    Parents restore before children, so a container can prepare (e.g.
    pre-start a generator thread) before its leaves are filled in.
    """
    scope = getattr(root, "state_scope", SCOPE_ARCHITECTURAL)
    if not include_bus_level and scope == SCOPE_BUS_LEVEL:
        return
    root.restore_state(node["state"])
    children = root.state_children()
    for name, child_node in node.get("children", {}).items():
        child = children.get(name)
        if child is not None:
            restore_tree(child, child_node, include_bus_level)
