"""Kernel work counters.

:class:`KernelStatistics` counts how much work an engine performed
(activations, delta cycles, timed steps, channel updates, event
notifications) plus a per-process attribution of activations.  The figure-2
experiments use these to show *why* an optimisation is faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class KernelStatistics:
    """Counters describing how much work the kernel performed.

    The figure-2 experiments use these to show *why* an optimisation is
    faster (for example "reduced scheduling" lowers ``process_activations``
    per simulated clock cycle).

    ``per_process`` attributes activations to individual processes.  On a
    live statistics object it is materialised on demand from the owning
    engine's process list (so the hot scheduling path pays nothing for the
    attribution); :meth:`snapshot` and :meth:`delta` return plain copies
    with the attribution baked in.
    """

    process_activations: int = 0
    delta_cycles: int = 0
    timed_steps: int = 0
    channel_updates: int = 0
    events_notified: int = 0
    #: Clock edges produced arithmetically in bulk (no subscribers) while
    #: the quantum CPU fast path had the clocked world detached.
    edges_skipped: int = 0
    per_process: dict = field(default_factory=dict)

    #: Callable returning the owning engine's processes; bound by the
    #: engine, absent on detached snapshots.  Deliberately a plain class
    #: attribute, not a dataclass field.
    _process_provider = None

    def bind_process_provider(self, provider: Callable) -> None:
        """Attach the engine-side source of per-process activation counts."""
        self._process_provider = provider

    def materialize_per_process(self) -> dict:
        """Refresh ``per_process`` from the live process list (if bound)."""
        if self._process_provider is not None:
            self.per_process = {process.name: process.activation_count
                                for process in self._process_provider()
                                if process.activation_count}
        return self.per_process

    def snapshot(self) -> "KernelStatistics":
        """Return a detached copy of the current counters."""
        return KernelStatistics(
            process_activations=self.process_activations,
            delta_cycles=self.delta_cycles,
            timed_steps=self.timed_steps,
            channel_updates=self.channel_updates,
            events_notified=self.events_notified,
            edges_skipped=self.edges_skipped,
            per_process=dict(self.materialize_per_process()),
        )

    def delta(self, earlier: "KernelStatistics") -> "KernelStatistics":
        """Return the difference between this snapshot and an earlier one.

        The result carries per-process activation deltas as well, so a
        measurement window keeps its per-process attribution (processes
        with no activations inside the window are omitted).
        """
        earlier_per_process = earlier.per_process
        per_process = {}
        for name, count in self.materialize_per_process().items():
            changed = count - earlier_per_process.get(name, 0)
            if changed:
                per_process[name] = changed
        return KernelStatistics(
            process_activations=(self.process_activations
                                 - earlier.process_activations),
            delta_cycles=self.delta_cycles - earlier.delta_cycles,
            timed_steps=self.timed_steps - earlier.timed_steps,
            channel_updates=self.channel_updates - earlier.channel_updates,
            events_notified=self.events_notified - earlier.events_notified,
            edges_skipped=self.edges_skipped - earlier.edges_skipped,
            per_process=per_process,
        )

    def as_dict(self) -> dict:
        """Scalar counters as a plain dictionary (for machine-readable
        benchmark output)."""
        return {
            "process_activations": self.process_activations,
            "delta_cycles": self.delta_cycles,
            "timed_steps": self.timed_steps,
            "channel_updates": self.channel_updates,
            "events_notified": self.events_notified,
            "edges_skipped": self.edges_skipped,
        }
