"""The discrete-event scheduler (the "SystemC kernel" of this library).

The scheduler follows the SystemC 2.x evaluate / update / delta-notify
execution semantics:

1. *Evaluation phase*: every runnable process executes.  Processes may write
   primitive channels (which request an update), notify events immediately
   (making further processes runnable in the same phase), or request delta /
   timed notifications.
2. *Update phase*: each primitive channel with a pending update request
   commits its new value.  Channels whose value actually changed request a
   delta notification of their value-changed event.
3. *Delta-notification phase*: queued delta notifications trigger their
   processes.  If any process became runnable, a new delta cycle of the same
   simulation time starts at step 1.
4. Otherwise simulation time advances to the earliest pending timed
   notification and the cycle repeats.

The per-phase bookkeeping is deliberately explicit because the paper's
optimisations (sections 4.3--4.5) are about reducing exactly this work:
fewer processes scheduled per cycle, fewer channel updates, fewer port reads.
:class:`KernelStatistics` exposes the counters that make those savings
visible in tests and benchmarks.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .errors import KernelError, SimulationStopped
from .events import Event
from .process import MethodProcess, Process, ThreadProcess
from .simtime import SimTime, _as_ps


@dataclass
class KernelStatistics:
    """Counters describing how much work the kernel performed.

    The figure-2 experiments use these to show *why* an optimisation is
    faster (for example "reduced scheduling" lowers ``process_activations``
    per simulated clock cycle).
    """

    process_activations: int = 0
    delta_cycles: int = 0
    timed_steps: int = 0
    channel_updates: int = 0
    events_notified: int = 0
    per_process: dict = field(default_factory=dict)

    def snapshot(self) -> "KernelStatistics":
        """Return a copy of the current counters."""
        return KernelStatistics(
            process_activations=self.process_activations,
            delta_cycles=self.delta_cycles,
            timed_steps=self.timed_steps,
            channel_updates=self.channel_updates,
            events_notified=self.events_notified,
            per_process=dict(self.per_process),
        )

    def delta(self, earlier: "KernelStatistics") -> "KernelStatistics":
        """Return the difference between this snapshot and an earlier one."""
        return KernelStatistics(
            process_activations=(self.process_activations
                                 - earlier.process_activations),
            delta_cycles=self.delta_cycles - earlier.delta_cycles,
            timed_steps=self.timed_steps - earlier.timed_steps,
            channel_updates=self.channel_updates - earlier.channel_updates,
            events_notified=self.events_notified - earlier.events_notified,
        )


class Simulator:
    """The simulation context: owns time, processes, channels and events.

    A model is built by instantiating modules/signals against a simulator and
    then calling :meth:`run`.  The simulator can be resumed repeatedly, which
    the non-cycle-accurate experiments use to toggle optimisations at run
    time (paper section 5).
    """

    def __init__(self, name: str = "sim") -> None:
        self.name = name
        self.time_ps: int = 0
        self.delta_count: int = 0
        self.stats = KernelStatistics()
        self._runnable: deque[Process] = deque()
        self._update_queue: list = []
        self._delta_events: list[Event] = []
        self._timed_queue: list[tuple[int, int, object]] = []
        self._timed_seq = 0
        self._processes: list[Process] = []
        self._current_process: Optional[Process] = None
        self._initialized = False
        self._stop_requested = False
        self._finished = False
        self._max_delta_cycles = 10_000
        self._end_of_elaboration_callbacks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @property
    def current_time(self) -> SimTime:
        """Current simulation time as a :class:`SimTime`."""
        return SimTime(self.time_ps)

    @property
    def current_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._current_process

    def create_event(self, name: str = "") -> Event:
        """Create a free-standing event bound to this simulator."""
        return Event(self, name)

    def register_process(self, process: Process) -> Process:
        """Track a process (called by module/spawn helpers)."""
        self._processes.append(process)
        if self._initialized and not process.dont_initialize:
            process._make_runnable()
        return process

    def spawn_thread(self, name: str, func: Callable,
                     sensitive: Iterable[Event] = (),
                     dont_initialize: bool = False) -> ThreadProcess:
        """Create and register a thread process outside any module."""
        process = ThreadProcess(self, name, func, sensitive, dont_initialize)
        return self.register_process(process)  # type: ignore[return-value]

    def spawn_method(self, name: str, func: Callable,
                     sensitive: Iterable[Event] = (),
                     dont_initialize: bool = False) -> MethodProcess:
        """Create and register a method process outside any module."""
        process = MethodProcess(self, name, func, sensitive, dont_initialize)
        return self.register_process(process)  # type: ignore[return-value]

    def on_end_of_elaboration(self, callback: Callable[[], None]) -> None:
        """Register a callback run once, just before simulation starts."""
        self._end_of_elaboration_callbacks.append(callback)

    def next_trigger(self, spec=None) -> None:
        """Forward ``next_trigger`` to the currently running method process."""
        process = self._current_process
        if not isinstance(process, MethodProcess):
            raise KernelError("next_trigger() may only be called from a "
                              "method process")
        process.next_trigger(spec)

    # ------------------------------------------------------------------ #
    # queues used by events / channels / processes
    # ------------------------------------------------------------------ #
    def _queue_runnable(self, process: Process) -> None:
        self._runnable.append(process)

    def _queue_delta_notification(self, event: Event) -> None:
        self._delta_events.append(event)

    def _queue_timed_notification(self, time_ps: int, event: Event) -> None:
        self._timed_seq += 1
        heapq.heappush(self._timed_queue, (time_ps, self._timed_seq, event))

    def schedule_action(self, delay: "SimTime | int",
                        action: Callable[[], None]) -> None:
        """Schedule a bare callable to run at ``now + delay``.

        Used by primitive channels such as the clock that need precise timed
        self-scheduling without a full process.
        """
        self._timed_seq += 1
        heapq.heappush(self._timed_queue,
                       (self.time_ps + _as_ps(delay), self._timed_seq, action))

    def _cancel_notification(self, event: Event) -> None:
        if event in self._delta_events:
            self._delta_events = [e for e in self._delta_events
                                  if e is not event]
        self._timed_queue = [entry for entry in self._timed_queue
                             if entry[2] is not event]
        heapq.heapify(self._timed_queue)

    def request_update(self, channel) -> None:
        """Request that ``channel._update()`` run in the next update phase."""
        if not channel._update_requested:
            channel._update_requested = True
            self._update_queue.append(channel)

    # ------------------------------------------------------------------ #
    # simulation control
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Stop the simulation at the end of the current process execution."""
        self._stop_requested = True

    @property
    def finished(self) -> bool:
        """True when no further activity is possible."""
        return self._finished

    def initialize(self) -> None:
        """Run elaboration callbacks and seed the initial runnable set."""
        if self._initialized:
            return
        for callback in self._end_of_elaboration_callbacks:
            callback()
        for process in self._processes:
            if not process.dont_initialize:
                process._make_runnable()
        self._initialized = True

    def run(self, duration: "SimTime | int | None" = None) -> SimTime:
        """Advance the simulation.

        ``duration`` limits how far simulation time may advance (relative to
        the current time); ``None`` runs until no activity remains or
        :meth:`stop` is called.  Returns the simulation time reached.
        """
        self.initialize()
        self._stop_requested = False
        end_time = None
        if duration is not None:
            end_time = self.time_ps + _as_ps(duration)
        try:
            self._run_loop(end_time)
        except SimulationStopped:
            pass
        return SimTime(self.time_ps)

    # ------------------------------------------------------------------ #
    # the main loop
    # ------------------------------------------------------------------ #
    def _run_loop(self, end_time: Optional[int]) -> None:
        stats = self.stats
        while True:
            # -- evaluation + update + delta loop at the current time ------
            deltas_here = 0
            while self._runnable or self._update_queue or self._delta_events:
                if self._runnable:
                    self._evaluation_phase()
                    if self._stop_requested:
                        return
                if self._update_queue:
                    self._update_phase()
                if self._delta_events:
                    self._delta_notification_phase()
                if self._runnable:
                    self.delta_count += 1
                    stats.delta_cycles += 1
                    deltas_here += 1
                    if deltas_here > self._max_delta_cycles:
                        raise KernelError(
                            f"more than {self._max_delta_cycles} delta "
                            f"cycles at time {self.current_time}; "
                            f"probable combinational loop")
            # -- advance time ----------------------------------------------
            if not self._timed_queue:
                self._finished = True
                return
            next_time = self._timed_queue[0][0]
            if end_time is not None and next_time > end_time:
                self.time_ps = end_time
                return
            self.time_ps = next_time
            stats.timed_steps += 1
            while self._timed_queue and self._timed_queue[0][0] == next_time:
                __, __, item = heapq.heappop(self._timed_queue)
                if isinstance(item, Event):
                    stats.events_notified += 1
                    item.trigger_processes()
                else:
                    item()

    def _evaluation_phase(self) -> None:
        stats = self.stats
        runnable = self._runnable
        while runnable:
            process = runnable.popleft()
            stats.process_activations += 1
            process.execute()
            if self._stop_requested:
                return

    def _update_phase(self) -> None:
        queue = self._update_queue
        self._update_queue = []
        self.stats.channel_updates += len(queue)
        for channel in queue:
            channel._update_requested = False
            channel._update()

    def _delta_notification_phase(self) -> None:
        events = self._delta_events
        self._delta_events = []
        self.stats.events_notified += len(events)
        for event in events:
            event.trigger_processes()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def processes(self) -> tuple[Process, ...]:
        """All registered processes."""
        return tuple(self._processes)

    def process_count(self, kind: Optional[str] = None) -> int:
        """Number of registered processes, optionally filtered by kind."""
        if kind is None:
            return len(self._processes)
        return sum(1 for process in self._processes if process.kind == kind)

    def pending_activity(self) -> bool:
        """True if any runnable process or queued notification remains."""
        return bool(self._runnable or self._update_queue
                    or self._delta_events or self._timed_queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Simulator({self.name!r}, t={self.current_time}, "
                f"processes={len(self._processes)})")
