"""The generic discrete-event engine (the "SystemC kernel" of this library).

:class:`Simulator` is the general-purpose implementation of
:class:`~repro.kernel.engine.SimulationEngine`: it follows the SystemC 2.x
evaluate / update / delta-notify execution semantics exactly as described in
:mod:`repro.kernel.engine`, and keeps timed notifications in a ``heapq``
priority queue so it supports arbitrary notification times from arbitrary
models.

The per-phase bookkeeping is deliberately explicit because the paper's
optimisations (sections 4.3--4.5) are about reducing exactly this work:
fewer processes scheduled per cycle, fewer channel updates, fewer port
reads.  :class:`KernelStatistics` exposes the counters that make those
savings visible in tests and benchmarks.  The clock-synchronous fast-path
engine lives in :mod:`repro.kernel.clocked`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from .engine import ENGINE_GENERIC, SimulationEngine
from .statistics import KernelStatistics  # noqa: F401  (historical import site)
from .events import Event
from .simtime import _as_ps


class Simulator(SimulationEngine):
    """The general-purpose engine: heapq timed queue, no model assumptions.

    This is the reference implementation every other engine must match
    architecturally.  Kept under its historical name because the whole
    model layer originally type-hinted against it; models now accept any
    :class:`~repro.kernel.engine.SimulationEngine`.
    """

    kind = ENGINE_GENERIC

    def __init__(self, name: str = "sim") -> None:
        super().__init__(name)
        self._timed_queue: list[tuple[int, int, object]] = []
        self._timed_seq = 0

    # -- timed notifications ------------------------------------------------
    def _queue_timed_notification(self, time_ps: int, event: Event) -> None:
        self._timed_seq += 1
        heapq.heappush(self._timed_queue, (time_ps, self._timed_seq, event))

    def schedule_action(self, delay, action: Callable[[], None]) -> None:
        """Schedule a bare callable to run at ``now + delay``."""
        self._timed_seq += 1
        heapq.heappush(self._timed_queue,
                       (self.time_ps + _as_ps(delay), self._timed_seq,
                        action))

    def _cancel_timed_notification(self, event: Event) -> None:
        self._timed_queue = [entry for entry in self._timed_queue
                             if entry[2] is not event]
        heapq.heapify(self._timed_queue)

    def _has_timed_activity(self) -> bool:
        return bool(self._timed_queue)

    def _clear_timed_state(self) -> None:
        self._timed_queue.clear()
        self._timed_seq = 0

    # -- time advance -------------------------------------------------------
    def _advance_time(self, end_time: Optional[int], stats) -> bool:
        if not self._timed_queue:
            self._finished = True
            return False
        next_time = self._timed_queue[0][0]
        if end_time is not None and next_time > end_time:
            self.time_ps = end_time
            return False
        self.time_ps = next_time
        stats.timed_steps += 1
        while self._timed_queue and self._timed_queue[0][0] == next_time:
            __, __, item = heapq.heappop(self._timed_queue)
            self._deliver_timed_item(item, next_time, stats)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Simulator({self.name!r}, t={self.current_time}, "
                f"processes={len(self._processes)})")
