"""Events -- the primitive synchronisation object of the kernel.

An :class:`Event` mirrors ``sc_event``: processes can be statically
sensitive to it (registered at elaboration time) or dynamically waiting on
it (a thread blocked in ``wait`` or a method whose ``next_trigger``
referenced it).  Notification comes in three flavours, exactly as in
SystemC:

* ``notify()``            -- immediate: sensitive processes become runnable
  in the *current* evaluation phase.
* ``notify_delta()``      -- delta: sensitive processes run in the next
  delta cycle of the current time step.
* ``notify(time)``        -- timed: sensitive processes run when simulation
  time has advanced by ``time``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from .simtime import SimTime, _as_ps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import SimulationEngine
    from .process import Process


class Event:
    """A notifiable synchronisation point.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.kernel.engine.SimulationEngine`.
    name:
        Optional diagnostic name (shown in ``repr`` and kernel errors).
    """

    __slots__ = ("sim", "name", "_static_procs", "_dynamic_procs",
                 "_pending_kind", "_pending_time", "_static_version")

    def __init__(self, sim: "SimulationEngine", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._static_procs: list["Process"] = []
        self._dynamic_procs: list["Process"] = []
        # Pending notification bookkeeping so later/earlier notifications
        # interact the way sc_event notifications do (an earlier notification
        # overrides a later one; an immediate overrides everything).
        self._pending_kind: Optional[str] = None
        self._pending_time: int = 0
        # Bumped whenever the static sensitivity list changes, so engines
        # that precompute activation schedules can invalidate their caches.
        self._static_version: int = 0

    # -- sensitivity management -------------------------------------------
    def add_static(self, process: "Process") -> None:
        """Register ``process`` as statically sensitive to this event."""
        if process not in self._static_procs:
            self._static_procs.append(process)
            self._static_version += 1

    def remove_static(self, process: "Process") -> None:
        """Remove ``process`` from the static sensitivity list."""
        if process in self._static_procs:
            self._static_procs.remove(process)
            self._static_version += 1

    def add_dynamic(self, process: "Process") -> None:
        """Register ``process`` as dynamically waiting on this event."""
        self._dynamic_procs.append(process)

    def remove_dynamic(self, process: "Process") -> None:
        """Remove ``process`` from the dynamic wait list (if present)."""
        try:
            self._dynamic_procs.remove(process)
        except ValueError:
            pass

    @property
    def waiting_processes(self) -> Iterable["Process"]:
        """All processes that would be triggered by a notification."""
        return tuple(self._static_procs) + tuple(self._dynamic_procs)

    # -- notification ------------------------------------------------------
    def notify(self, delay: "SimTime | int | None" = None) -> None:
        """Notify the event.

        ``delay is None`` requests immediate notification, a zero delay
        requests a delta notification, and a positive delay requests a timed
        notification.
        """
        if delay is None:
            self._notify_immediate()
            return
        delay_ps = _as_ps(delay)
        if delay_ps < 0:
            raise ValueError("event notification delay must be >= 0")
        if delay_ps == 0:
            self.notify_delta()
        else:
            self._notify_timed(delay_ps)

    def notify_delta(self) -> None:
        """Request a delta-cycle notification."""
        if self._pending_kind == "immediate":
            return
        self._pending_kind = "delta"
        self.sim._queue_delta_notification(self)

    def _notify_immediate(self) -> None:
        """Trigger all sensitive processes right now."""
        self._pending_kind = "immediate"
        self.trigger_processes()
        self._pending_kind = None

    def _notify_timed(self, delay_ps: int) -> None:
        target = self.sim.time_ps + delay_ps
        if self._pending_kind == "timed" and self._pending_time <= target:
            # An earlier timed notification is already pending; SystemC keeps
            # the earlier one.
            return
        if self._pending_kind in ("immediate", "delta"):
            return
        self._pending_kind = "timed"
        self._pending_time = target
        self.sim._queue_timed_notification(target, self)

    def cancel(self) -> None:
        """Cancel any pending delta or timed notification."""
        self._pending_kind = None
        self.sim._cancel_notification(self)

    # -- used by the scheduler ---------------------------------------------
    def trigger_processes(self) -> None:
        """Make every sensitive process runnable.

        Called by the scheduler when a queued (delta or timed) notification
        matures, or directly for immediate notification.
        """
        self._pending_kind = None
        for process in self._static_procs:
            process.trigger_static(self)
        if self._dynamic_procs:
            waiting = self._dynamic_procs
            self._dynamic_procs = []
            for process in waiting:
                process.trigger_dynamic(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.name or hex(id(self))})"


class EventOrList:
    """An "any of these events" wait specification.

    Produced by ``event_a | event_b`` so thread processes can write
    ``yield uart_event | timeout_event``.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = tuple(events)

    def __or__(self, other: "Event | EventOrList") -> "EventOrList":
        if isinstance(other, EventOrList):
            return EventOrList(self.events + other.events)
        return EventOrList(self.events + (other,))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def _event_or(self: Event, other: "Event | EventOrList") -> EventOrList:
    """Combine two events into an :class:`EventOrList` (``a | b``)."""
    if isinstance(other, EventOrList):
        return EventOrList((self,) + other.events)
    return EventOrList((self, other))


# Attach the ``|`` operator without widening Event.__slots__.
Event.__or__ = _event_or  # type: ignore[attr-defined]
