"""Exception hierarchy for the simulation kernel.

A small, explicit set of exception types so callers can distinguish
user/model errors (``ModelError``) from kernel misuse (``KernelError``)
and from deliberate simulation termination (``SimulationStopped``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class KernelError(ReproError):
    """The simulation kernel was used incorrectly.

    Examples: waiting outside a thread process, binding a port twice,
    scheduling after the simulation has finished.
    """


class ModelError(ReproError):
    """A hardware model detected an inconsistent or illegal condition.

    Examples: multiple drivers on an unresolved signal, an out-of-range
    bus address, a peripheral register misuse.
    """


class BindingError(KernelError):
    """A port was left unbound or bound to an incompatible channel."""


class MultipleDriverError(ModelError):
    """More than one process drove an unresolved signal in the same cycle."""


class AddressError(ModelError):
    """A bus transaction targeted an address no slave claims."""


class AlignmentError(ModelError):
    """A memory access violated the alignment rules of the bus."""


class DecodeError(ModelError):
    """An instruction word could not be decoded."""


class AssemblerError(ReproError):
    """The assembler rejected a source line."""


class SimulationStopped(ReproError):
    """Raised internally to unwind when ``Simulator.stop()`` is called."""


class SimulationFinished(ReproError):
    """Raised when an operation requires a still-running simulation."""
