"""Module base class -- the structural unit of a model (``sc_module``).

A module owns processes and ports, may contain child modules, and carries a
hierarchical name used in diagnostics and VCD traces.  Process registration
mirrors the SystemC macros:

* :meth:`Module.sc_thread`  registers a generator function as a thread.
* :meth:`Module.sc_method`  registers a callable as a method process.

Both accept a ``sensitive`` iterable of events (or objects with a
``default_event()`` method such as signals and ports).
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterable, Optional

from .errors import KernelError
from .events import Event
from .process import MethodProcess, ThreadProcess
from .engine import SimulationEngine


def _as_events(sensitive: Iterable) -> list[Event]:
    """Normalise a sensitivity list into events.

    Accepts events directly, or any object exposing ``default_event()``
    (signals, ports, clocks) or ``posedge_event()`` when given through the
    helper :func:`posedge`.
    """
    events: list[Event] = []
    for item in sensitive:
        if isinstance(item, Event):
            events.append(item)
        elif hasattr(item, "default_event"):
            events.append(item.default_event())
        else:
            raise KernelError(f"cannot be used in a sensitivity list: "
                              f"{item!r}")
    return events


def posedge(signal) -> Event:
    """Return the positive-edge event of a boolean signal or clock."""
    return signal.posedge_event()


def negedge(signal) -> Event:
    """Return the negative-edge event of a boolean signal or clock."""
    return signal.negedge_event()


class Module:
    """Base class for every hardware model component.

    Parameters
    ----------
    sim:
        The simulator this module belongs to.
    name:
        Local instance name.  The full hierarchical name is derived from the
        parent chain (``top.bus.arbiter``).
    parent:
        Optional enclosing module.
    """

    def __init__(self, sim: SimulationEngine, name: str,
                 parent: Optional["Module"] = None) -> None:
        self.sim = sim
        self.basename = name
        self.parent = parent
        self.children: list["Module"] = []
        self.processes: list = []
        if parent is not None:
            parent.children.append(self)

    # -- naming --------------------------------------------------------------
    @property
    def name(self) -> str:
        """Full hierarchical name of this module."""
        if self.parent is None:
            return self.basename
        return f"{self.parent.name}.{self.basename}"

    # -- process registration -------------------------------------------------
    def sc_thread(self, func: Callable, sensitive: Iterable = (),
                  dont_initialize: bool = False,
                  name: Optional[str] = None) -> ThreadProcess:
        """Register ``func`` (usually a generator function) as a thread."""
        process_name = f"{self.name}.{name or func.__name__}"
        process = ThreadProcess(self.sim, process_name, func,
                                _as_events(sensitive), dont_initialize)
        self.processes.append(process)
        self.sim.register_process(process)
        return process

    def sc_method(self, func: Callable, sensitive: Iterable = (),
                  dont_initialize: bool = False,
                  name: Optional[str] = None) -> MethodProcess:
        """Register ``func`` as a run-to-completion method process."""
        process_name = f"{self.name}.{name or func.__name__}"
        process = MethodProcess(self.sim, process_name, func,
                                _as_events(sensitive), dont_initialize)
        self.processes.append(process)
        self.sim.register_process(process)
        return process

    def sc_process(self, func: Callable, sensitive: Iterable = (),
                   use_method: bool = True,
                   dont_initialize: bool = False):
        """Register ``func`` as either a method or a thread.

        This is the hook the paper's "Threads vs Methods" experiment
        (section 4.3) uses: the same model code is registered as a thread or
        a method depending on the model configuration.  When a plain
        (non-generator) function is registered as a thread it is wrapped in
        the classic ``while (1) { work(); wait(); }`` loop of Listing 2, so
        the thread and method versions do identical per-cycle work and only
        the scheduling mechanism differs.
        """
        if use_method:
            return self.sc_method(func, sensitive, dont_initialize)
        if inspect.isgeneratorfunction(func):
            return self.sc_thread(func, sensitive, dont_initialize)

        def _looping_thread():
            while True:
                func()
                yield None

        return self.sc_thread(_looping_thread, sensitive, dont_initialize,
                              name=getattr(func, "__name__", "thread"))

    # -- conveniences ----------------------------------------------------------
    def next_trigger(self, spec=None) -> None:
        """Forward to the currently executing method process."""
        self.sim.next_trigger(spec)

    def all_processes(self) -> list:
        """This module's processes plus those of every child, recursively."""
        result = list(self.processes)
        for child in self.children:
            result.extend(child.all_processes())
        return result

    def find_child(self, basename: str) -> Optional["Module"]:
        """Locate a direct child module by its local name."""
        for child in self.children:
            if child.basename == basename:
                return child
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"
