"""Simulation time representation.

Simulation time is kept as an integer number of picoseconds, mirroring
SystemC's integer time resolution.  The :class:`SimTime` helper provides
readable constructors (``SimTime.ns(10)``) and arithmetic, while the rest of
the kernel works with plain integers for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TimeUnit(Enum):
    """Time units supported by the kernel, named after the SystemC enums."""

    SC_FS = 1e-3
    SC_PS = 1.0
    SC_NS = 1e3
    SC_US = 1e6
    SC_MS = 1e9
    SC_SEC = 1e12

    @property
    def picoseconds(self) -> float:
        """Number of picoseconds in one unit."""
        return self.value


#: Number of picoseconds per unit, keyed by unit name for quick lookup.
_PS_PER_UNIT = {
    "fs": 1e-3,
    "ps": 1.0,
    "ns": 1e3,
    "us": 1e6,
    "ms": 1e9,
    "s": 1e12,
    "sec": 1e12,
}


def to_picoseconds(value: float, unit: "TimeUnit | str") -> int:
    """Convert ``value`` expressed in ``unit`` into integer picoseconds.

    ``unit`` may be a :class:`TimeUnit` member or a short string such as
    ``"ns"``.  Fractional picoseconds are rounded to the nearest integer.
    """
    if isinstance(unit, TimeUnit):
        factor = unit.picoseconds
    else:
        try:
            factor = _PS_PER_UNIT[unit.lower()]
        except KeyError as exc:
            raise ValueError(f"unknown time unit: {unit!r}") from exc
    return int(round(value * factor))


@dataclass(frozen=True, order=True)
class SimTime:
    """An absolute or relative simulation time, stored in picoseconds.

    The class is immutable and ordered, so it can be used directly as a heap
    key or dictionary key.
    """

    picoseconds: int = 0

    # -- constructors ------------------------------------------------------
    @classmethod
    def fs(cls, value: float) -> "SimTime":
        """Create a time from femtoseconds."""
        return cls(to_picoseconds(value, "fs"))

    @classmethod
    def ps(cls, value: float) -> "SimTime":
        """Create a time from picoseconds."""
        return cls(int(round(value)))

    @classmethod
    def ns(cls, value: float) -> "SimTime":
        """Create a time from nanoseconds."""
        return cls(to_picoseconds(value, "ns"))

    @classmethod
    def us(cls, value: float) -> "SimTime":
        """Create a time from microseconds."""
        return cls(to_picoseconds(value, "us"))

    @classmethod
    def ms(cls, value: float) -> "SimTime":
        """Create a time from milliseconds."""
        return cls(to_picoseconds(value, "ms"))

    @classmethod
    def sec(cls, value: float) -> "SimTime":
        """Create a time from seconds."""
        return cls(to_picoseconds(value, "s"))

    # -- conversions -------------------------------------------------------
    def to_ns(self) -> float:
        """Return the time expressed in nanoseconds."""
        return self.picoseconds / 1e3

    def to_us(self) -> float:
        """Return the time expressed in microseconds."""
        return self.picoseconds / 1e6

    def to_seconds(self) -> float:
        """Return the time expressed in seconds."""
        return self.picoseconds / 1e12

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "SimTime | int") -> "SimTime":
        return SimTime(self.picoseconds + _as_ps(other))

    def __radd__(self, other: "SimTime | int") -> "SimTime":
        return self.__add__(other)

    def __sub__(self, other: "SimTime | int") -> "SimTime":
        return SimTime(self.picoseconds - _as_ps(other))

    def __mul__(self, factor: int) -> "SimTime":
        return SimTime(self.picoseconds * factor)

    def __rmul__(self, factor: int) -> "SimTime":
        return self.__mul__(factor)

    def __int__(self) -> int:
        return self.picoseconds

    def __bool__(self) -> bool:
        return self.picoseconds != 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimTime({self.picoseconds} ps)"

    def __str__(self) -> str:
        ps = self.picoseconds
        if ps == 0:
            return "0 s"
        for suffix, factor in (("s", 1e12), ("ms", 1e9), ("us", 1e6),
                               ("ns", 1e3), ("ps", 1.0)):
            if ps >= factor:
                return f"{ps / factor:g} {suffix}"
        return f"{ps} ps"


ZERO_TIME = SimTime(0)


def _as_ps(value: "SimTime | int | float") -> int:
    """Coerce a :class:`SimTime`, ``int`` or ``float`` into picoseconds."""
    if isinstance(value, SimTime):
        return value.picoseconds
    return int(value)
