"""MicroBlaze ISA: encodings, decoder, assembler, disassembler, registers."""

from . import encoding
from .assembler import Assembler, Program, assemble
from .decoder import DecodeCache, Instruction, decode
from .disassembler import (disassemble_range, disassemble_word,
                           format_instruction)
from .registers import (ABI_ALIASES, ARGUMENT_REGISTERS,
                        INTERRUPT_LINK_REGISTER, LINK_REGISTER,
                        MachineStatusRegister, RegisterFile,
                        RETURN_VALUE_REGISTER, STACK_POINTER)
from .symbols import SymbolTable

__all__ = [
    "ABI_ALIASES",
    "ARGUMENT_REGISTERS",
    "Assembler",
    "DecodeCache",
    "INTERRUPT_LINK_REGISTER",
    "Instruction",
    "LINK_REGISTER",
    "MachineStatusRegister",
    "Program",
    "RETURN_VALUE_REGISTER",
    "RegisterFile",
    "STACK_POINTER",
    "SymbolTable",
    "assemble",
    "decode",
    "disassemble_range",
    "disassemble_word",
    "encoding",
    "format_instruction",
]
