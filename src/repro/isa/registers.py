"""MicroBlaze register model: general-purpose file, MSR and special registers.

Register conventions used by the workloads (the standard MicroBlaze ABI):

* ``r0``   -- always zero.
* ``r1``   -- stack pointer.
* ``r3/r4``-- return values.
* ``r5-r10`` -- argument registers (memset/memcpy arguments live in r5-r7,
  which is what the kernel-function interception of section 5.4 reads).
* ``r14``  -- interrupt return address.
* ``r15``  -- sub-routine return address.
"""

from __future__ import annotations

from ..datatypes import WORD_MASK, get_bit, set_bit

#: ABI register aliases accepted by the assembler.
ABI_ALIASES = {
    "zero": 0,
    "sp": 1,
    "retval": 3,
    "arg0": 5,
    "arg1": 6,
    "arg2": 7,
    "intret": 14,
    "link": 15,
}

#: Registers used to pass the first three function arguments.
ARGUMENT_REGISTERS = (5, 6, 7)
RETURN_VALUE_REGISTER = 3
LINK_REGISTER = 15
INTERRUPT_LINK_REGISTER = 14
STACK_POINTER = 1


class RegisterFile:
    """The 32 general-purpose registers, with ``r0`` hard-wired to zero."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs = [0] * 32

    def read(self, index: int) -> int:
        """Value of register ``index`` (unsigned 32-bit)."""
        if not 0 <= index < 32:
            raise IndexError(f"register index out of range: {index}")
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Write register ``index``; writes to ``r0`` are discarded."""
        if not 0 <= index < 32:
            raise IndexError(f"register index out of range: {index}")
        if index == 0:
            return
        self._regs[index] = value & WORD_MASK

    def reset(self) -> None:
        """Clear every register."""
        for i in range(32):
            self._regs[i] = 0

    def dump(self) -> dict[str, int]:
        """Snapshot of all registers keyed by ``rN`` name."""
        return {f"r{i}": self._regs[i] for i in range(32)}

    def __getitem__(self, index: int) -> int:
        return self.read(index)

    def __setitem__(self, index: int, value: int) -> None:
        self.write(index, value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nonzero = {f"r{i}": hex(v) for i, v in enumerate(self._regs) if v}
        return f"RegisterFile({nonzero})"


class MachineStatusRegister:
    """The MSR: carry, interrupt-enable, break-in-progress and copy bits."""

    BIT_BE = 0       # Buslock enable (unused here, kept for completeness)
    BIT_IE = 1       # Interrupt enable
    BIT_C = 2        # Arithmetic carry
    BIT_BIP = 3      # Break in progress
    BIT_EE = 8       # Exception enable
    BIT_EIP = 9      # Exception in progress
    BIT_CC = 31      # Carry copy (mirrors bit C)

    def __init__(self) -> None:
        self._value = 0

    # -- whole-register access ---------------------------------------------
    @property
    def value(self) -> int:
        """Raw MSR value with the carry-copy bit kept coherent."""
        return set_bit(self._value, self.BIT_CC, get_bit(self._value,
                                                         self.BIT_C))

    @value.setter
    def value(self, new_value: int) -> None:
        new_value &= WORD_MASK
        # Writing either carry bit updates both.
        carry = get_bit(new_value, self.BIT_C) | get_bit(new_value,
                                                         self.BIT_CC)
        new_value = set_bit(new_value, self.BIT_C, carry)
        self._value = new_value & ~(1 << self.BIT_CC)

    def reset(self) -> None:
        """Clear the MSR."""
        self._value = 0

    # -- named flags ---------------------------------------------------------
    @property
    def carry(self) -> int:
        """Arithmetic carry flag (0 or 1)."""
        return get_bit(self._value, self.BIT_C)

    @carry.setter
    def carry(self, bit: int) -> None:
        self._value = set_bit(self._value, self.BIT_C, bit)

    @property
    def interrupt_enable(self) -> bool:
        """True when interrupts are enabled."""
        return bool(get_bit(self._value, self.BIT_IE))

    @interrupt_enable.setter
    def interrupt_enable(self, enabled: bool) -> None:
        self._value = set_bit(self._value, self.BIT_IE, int(enabled))

    @property
    def break_in_progress(self) -> bool:
        """True while servicing a break."""
        return bool(get_bit(self._value, self.BIT_BIP))

    @break_in_progress.setter
    def break_in_progress(self, active: bool) -> None:
        self._value = set_bit(self._value, self.BIT_BIP, int(active))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MSR(C={self.carry}, IE={int(self.interrupt_enable)}, "
                f"BIP={int(self.break_in_progress)})")
