"""Symbol table: named addresses produced by the assembler.

Besides simple name/address lookup, the table supports *region* queries
("which function does this address belong to"), which the ISS statistics
module uses to attribute executed instructions to functions -- the basis of
the paper's observation that 52 % of the boot instructions execute inside
``memset`` and ``memcpy`` (section 5.4).
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional


class SymbolTable:
    """A mapping of symbol names to addresses with range queries."""

    def __init__(self) -> None:
        self._by_name: dict[str, int] = {}
        self._sorted_addresses: list[int] = []
        self._names_at: dict[int, list[str]] = {}

    # -- population -----------------------------------------------------------
    def define(self, name: str, address: int) -> None:
        """Define ``name`` at ``address``; redefinition must agree."""
        existing = self._by_name.get(name)
        if existing is not None and existing != address:
            raise ValueError(f"symbol {name!r} redefined: "
                             f"{existing:#x} vs {address:#x}")
        if existing is not None:
            return
        self._by_name[name] = address
        if address not in self._names_at:
            bisect.insort(self._sorted_addresses, address)
            self._names_at[address] = []
        self._names_at[address].append(name)

    # -- queries -----------------------------------------------------------------
    def address_of(self, name: str) -> int:
        """Address of ``name``; raises ``KeyError`` when undefined."""
        return self._by_name[name]

    def get(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """Address of ``name`` or ``default``."""
        return self._by_name.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_name)

    def items(self):
        """``(name, address)`` pairs."""
        return self._by_name.items()

    def names_at(self, address: int) -> tuple[str, ...]:
        """All symbols defined exactly at ``address``."""
        return tuple(self._names_at.get(address, ()))

    def containing(self, address: int) -> Optional[str]:
        """Name of the closest symbol at or below ``address``.

        This is the "which function am I in" query used for instruction
        profiling.  Returns ``None`` when ``address`` precedes every symbol.
        """
        index = bisect.bisect_right(self._sorted_addresses, address) - 1
        if index < 0:
            return None
        base = self._sorted_addresses[index]
        return self._names_at[base][0]

    def merged_with(self, other: "SymbolTable") -> "SymbolTable":
        """A new table containing the symbols of both tables."""
        merged = SymbolTable()
        for name, address in self.items():
            merged.define(name, address)
        for name, address in other.items():
            merged.define(name, address)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SymbolTable({len(self._by_name)} symbols)"
