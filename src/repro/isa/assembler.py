"""Two-pass MicroBlaze assembler.

The synthetic boot workload (``repro.software``) is written in MicroBlaze
assembly and assembled with this module, so the ISS executes real
instruction encodings rather than hand-built objects.

Supported syntax
----------------

* labels: ``label:`` (optionally followed by an instruction on the line)
* comments: ``#``, ``;`` and ``//`` to end of line
* directives: ``.org ADDR``, ``.word V[, V...]``, ``.space N``,
  ``.align N``, ``.ascii "text"``, ``.asciiz "text"``, ``.equ NAME, VALUE``
* all instructions understood by :mod:`repro.isa.decoder`
* pseudo-instructions: ``nop``, ``li rd, imm32`` (also ``la``), ``ret``,
  ``reti``

Label-addressed immediates (branch targets, ``li``) always assemble to an
``imm``-prefix pair, so instruction sizing is deterministic across the two
passes.  Numeric immediates assemble to a single word and must fit in the
16-bit field.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from ..datatypes import truncate
from ..kernel.errors import AssemblerError
from . import encoding as enc
from .registers import ABI_ALIASES
from .symbols import SymbolTable

_SPECIAL_REGISTERS = {
    "rpc": enc.SPR_PC,
    "rmsr": enc.SPR_MSR,
    "rear": enc.SPR_EAR,
    "resr": enc.SPR_ESR,
}

_TYPE_A_THREE_REG = {
    "add": (enc.OP_ADD, 0), "addc": (enc.OP_ADDC, 0),
    "addk": (enc.OP_ADDK, 0), "addkc": (enc.OP_ADDKC, 0),
    "rsub": (enc.OP_RSUB, 0), "rsubc": (enc.OP_RSUBC, 0),
    "rsubk": (enc.OP_RSUBK, 0), "rsubkc": (enc.OP_RSUBKC, 0),
    "cmp": (enc.OP_RSUBK, enc.CMP_FUNC),
    "cmpu": (enc.OP_RSUBK, enc.CMPU_FUNC),
    "or": (enc.OP_OR, 0), "and": (enc.OP_AND, 0), "xor": (enc.OP_XOR, 0),
    "andn": (enc.OP_ANDN, 0), "mul": (enc.OP_MUL, 0),
    "idiv": (enc.OP_IDIV, 0), "idivu": (enc.OP_IDIV, 2),
    "bsrl": (enc.OP_BS, enc.BS_SRL), "bsra": (enc.OP_BS, enc.BS_SRA),
    "bsll": (enc.OP_BS, enc.BS_SLL),
    "lbu": (enc.OP_LBU, 0), "lhu": (enc.OP_LHU, 0), "lw": (enc.OP_LW, 0),
    "sb": (enc.OP_SB, 0), "sh": (enc.OP_SH, 0), "sw": (enc.OP_SW, 0),
}

_TYPE_B_REG_REG_IMM = {
    "addi": enc.OP_ADDI, "addic": enc.OP_ADDIC, "addik": enc.OP_ADDIK,
    "addikc": enc.OP_ADDIKC, "rsubi": enc.OP_RSUBI, "rsubic": enc.OP_RSUBIC,
    "rsubik": enc.OP_RSUBIK, "rsubikc": enc.OP_RSUBIKC,
    "ori": enc.OP_ORI, "andi": enc.OP_ANDI, "xori": enc.OP_XORI,
    "andni": enc.OP_ANDNI, "muli": enc.OP_MULI,
    "lbui": enc.OP_LBUI, "lhui": enc.OP_LHUI, "lwi": enc.OP_LWI,
    "sbi": enc.OP_SBI, "shi": enc.OP_SHI, "swi": enc.OP_SWI,
}

_BARREL_SHIFT_IMM = {
    "bsrli": enc.BS_SRL, "bsrai": enc.BS_SRA, "bslli": enc.BS_SLL,
}

_SHIFT_ONE_REG = {
    "sra": enc.SHIFT_SRA, "src": enc.SHIFT_SRC, "srl": enc.SHIFT_SRL,
    "sext8": enc.SHIFT_SEXT8, "sext16": enc.SHIFT_SEXT16,
}

#: Unconditional branch mnemonics -> (absolute, link, delay).
_BRANCH_FLAVOURS = {
    "br": (False, False, False), "brd": (False, False, True),
    "brld": (False, True, True), "bra": (True, False, False),
    "brad": (True, False, True), "brald": (True, True, True),
    "bri": (False, False, False), "brid": (False, False, True),
    "brlid": (False, True, True), "brai": (True, False, False),
    "braid": (True, False, True), "bralid": (True, True, True),
}

_CONDITION_CODES = {
    "eq": enc.COND_EQ, "ne": enc.COND_NE, "lt": enc.COND_LT,
    "le": enc.COND_LE, "gt": enc.COND_GT, "ge": enc.COND_GE,
}

_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


@dataclass
class Program:
    """The output of the assembler: loadable segments plus metadata."""

    segments: list[tuple[int, bytearray]] = field(default_factory=list)
    symbols: SymbolTable = field(default_factory=SymbolTable)
    entry_point: int = 0
    instruction_count: int = 0

    def words(self) -> list[tuple[int, int]]:
        """All whole words as ``(address, value)`` pairs (big-endian)."""
        result = []
        for base, data in self.segments:
            for offset in range(0, len(data) - len(data) % 4, 4):
                value = int.from_bytes(data[offset:offset + 4], "big")
                result.append((base + offset, value))
        return result

    def load(self, write_byte: Callable[[int, int], None]) -> int:
        """Load every segment through a ``write_byte(address, value)`` callback.

        Returns the number of bytes written.
        """
        written = 0
        for base, data in self.segments:
            for offset, value in enumerate(data):
                write_byte(base + offset, value)
                written += 1
        return written

    @property
    def size_bytes(self) -> int:
        """Total number of bytes across all segments."""
        return sum(len(data) for __, data in self.segments)

    def address_range(self) -> tuple[int, int]:
        """Lowest and highest (exclusive) address touched by the program."""
        if not self.segments:
            return (0, 0)
        low = min(base for base, __ in self.segments)
        high = max(base + len(data) for base, data in self.segments)
        return (low, high)


@dataclass
class _Item:
    """One assembly line after parsing (pass 1)."""

    kind: str                 # 'instruction' | 'word' | 'space' | 'ascii'
    address: int
    size: int
    mnemonic: str = ""
    operands: tuple = ()
    data: bytes = b""
    line_number: int = 0
    source: str = ""
    #: A label-target branch encoded without an IMM prefix (backward branch
    #: to an already-defined label whose offset fits in 16 bits).
    compact_branch: bool = False


class Assembler:
    """Two-pass assembler producing :class:`Program` objects."""

    def __init__(self) -> None:
        self._constants: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def assemble(self, source: str, origin: int = 0) -> Program:
        """Assemble ``source`` text starting at ``origin``."""
        self._constants = {}
        symbols = SymbolTable()
        items = self._first_pass(source, origin, symbols)
        program = self._second_pass(items, symbols)
        program.entry_point = symbols.get("_start", origin)
        return program

    # ------------------------------------------------------------------ #
    # pass 1: sizing, label collection
    # ------------------------------------------------------------------ #
    def _first_pass(self, source: str, origin: int,
                    symbols: SymbolTable) -> list[_Item]:
        items: list[_Item] = []
        address = origin
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw_line).strip()
            if not line:
                continue
            line, address = self._consume_labels(line, address, symbols)
            if not line:
                continue
            if line.startswith("."):
                address = self._handle_directive_pass1(
                    line, address, symbols, items, line_number)
                continue
            mnemonic, operands = self._split_instruction(line)
            size, compact = self._instruction_size(mnemonic, operands,
                                                   address, symbols)
            items.append(_Item(kind="instruction", address=address,
                               size=size, mnemonic=mnemonic,
                               operands=operands, line_number=line_number,
                               source=raw_line.strip(),
                               compact_branch=compact))
            address += size
        return items

    @staticmethod
    def _strip_comment(line: str) -> str:
        for marker in ("#", ";", "//"):
            index = line.find(marker)
            if index >= 0:
                line = line[:index]
        return line

    @staticmethod
    def _consume_labels(line: str, address: int,
                        symbols: SymbolTable) -> tuple[str, int]:
        while ":" in line:
            candidate, __, rest = line.partition(":")
            candidate = candidate.strip()
            if not candidate or not re.fullmatch(r"[A-Za-z_.$][\w.$]*",
                                                 candidate):
                break
            symbols.define(candidate, address)
            line = rest.strip()
        return line, address

    @staticmethod
    def _split_instruction(line: str) -> tuple[str, tuple]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if len(parts) == 1:
            return mnemonic, ()
        operands = tuple(op.strip() for op in parts[1].split(","))
        return mnemonic, operands

    def _handle_directive_pass1(self, line: str, address: int,
                                symbols: SymbolTable, items: list[_Item],
                                line_number: int) -> int:
        mnemonic, operands = self._split_instruction(line)
        if mnemonic == ".org":
            return self._parse_number(operands[0])
        if mnemonic == ".equ":
            if len(operands) != 2:
                raise AssemblerError(f"line {line_number}: .equ needs a name "
                                     f"and a value")
            self._constants[operands[0]] = self._parse_number(operands[1])
            return address
        if mnemonic == ".align":
            alignment = self._parse_number(operands[0])
            padding = (-address) % alignment
            if padding:
                items.append(_Item(kind="space", address=address,
                                   size=padding, line_number=line_number))
            return address + padding
        if mnemonic == ".space":
            size = self._parse_number(operands[0])
            items.append(_Item(kind="space", address=address, size=size,
                               line_number=line_number))
            return address + size
        if mnemonic == ".word":
            size = 4 * len(operands)
            items.append(_Item(kind="word", address=address, size=size,
                               operands=operands, line_number=line_number))
            return address + size
        if mnemonic in (".ascii", ".asciiz"):
            match = _STRING_RE.search(line)
            if match is None:
                raise AssemblerError(f"line {line_number}: missing string "
                                     f"literal for {mnemonic}")
            text = match.group(1).encode("ascii").decode("unicode_escape")
            data = text.encode("latin-1")
            if mnemonic == ".asciiz":
                data += b"\x00"
            items.append(_Item(kind="ascii", address=address,
                               size=len(data), data=data,
                               line_number=line_number))
            return address + len(data)
        raise AssemblerError(f"line {line_number}: unknown directive "
                             f"{mnemonic!r}")

    def _instruction_size(self, mnemonic: str, operands: tuple,
                          address: int,
                          symbols: SymbolTable) -> tuple[int, bool]:
        """Size in bytes plus whether a branch uses the compact encoding."""
        if mnemonic in ("li", "la"):
            return 8, False
        # Immediate-form branches to a label normally need an IMM prefix
        # (8 bytes); a backward branch to an already-defined nearby label
        # fits in the 16-bit immediate and stays a single word.
        immediate_branch = (
            (mnemonic in _BRANCH_FLAVOURS and "i" in mnemonic[2:])
            or (self._is_conditional(mnemonic)
                and mnemonic.rstrip("d").endswith("i")))
        if immediate_branch and self._last_operand_is_symbolic(operands):
            target_token = operands[-1].strip()
            if target_token in symbols:
                offset = symbols.address_of(target_token) - address
                absolute = mnemonic in _BRANCH_FLAVOURS \
                    and _BRANCH_FLAVOURS[mnemonic][0]
                if not absolute and -32768 <= offset <= 32767:
                    return 4, True
            return 8, False
        return 4, False

    def _is_conditional(self, mnemonic: str) -> bool:
        base = mnemonic
        for suffix in ("id", "i", "d"):
            if base.endswith(suffix) and base[:-len(suffix)] in (
                    f"b{c}" for c in _CONDITION_CODES):
                base = base[:-len(suffix)]
                break
        return base in tuple(f"b{c}" for c in _CONDITION_CODES)

    def _last_operand_is_symbolic(self, operands: tuple) -> bool:
        if not operands:
            return False
        try:
            self._parse_number(operands[-1])
            return False
        except (AssemblerError, ValueError):
            return True

    # ------------------------------------------------------------------ #
    # pass 2: encoding
    # ------------------------------------------------------------------ #
    def _second_pass(self, items: list[_Item],
                     symbols: SymbolTable) -> Program:
        program = Program(symbols=symbols)
        chunks: list[tuple[int, bytes]] = []
        for item in items:
            try:
                chunks.append((item.address, self._emit(item, symbols,
                                                        program)))
            except AssemblerError:
                raise
            except (ValueError, KeyError) as exc:
                raise AssemblerError(
                    f"line {item.line_number}: {exc} (in {item.source!r})"
                ) from exc
        program.segments = _merge_chunks(chunks)
        return program

    def _emit(self, item: _Item, symbols: SymbolTable,
              program: Program) -> bytes:
        if item.kind == "space":
            return bytes(item.size)
        if item.kind == "ascii":
            return item.data
        if item.kind == "word":
            values = [self._resolve(op, symbols) for op in item.operands]
            return b"".join(truncate(v, 32).to_bytes(4, "big")
                            for v in values)
        words = self._encode_instruction(item, symbols)
        program.instruction_count += len(words)
        return b"".join(word.to_bytes(4, "big") for word in words)

    # -- operand helpers ------------------------------------------------------
    def _parse_register(self, token: str) -> int:
        token = token.strip().lower()
        if token in ABI_ALIASES:
            return ABI_ALIASES[token]
        if token.startswith("r") and token[1:].isdigit():
            index = int(token[1:])
            if 0 <= index < 32:
                return index
        raise AssemblerError(f"invalid register: {token!r}")

    def _parse_number(self, token: str) -> int:
        token = token.strip()
        if token in self._constants:
            return self._constants[token]
        try:
            return int(token, 0)
        except ValueError as exc:
            raise AssemblerError(f"not a number: {token!r}") from exc

    def _resolve(self, token: str, symbols: SymbolTable) -> int:
        """Resolve a numeric literal, constant, or label (+/- offset)."""
        token = token.strip()
        match = re.fullmatch(r"([A-Za-z_.$][\w.$]*)\s*([+-]\s*\w+)?", token)
        if match and (match.group(1) in symbols
                      or match.group(1) in self._constants):
            base_name = match.group(1)
            base = (symbols.get(base_name)
                    if base_name in symbols
                    else self._constants[base_name])
            offset = 0
            if match.group(2):
                offset = int(match.group(2).replace(" ", ""), 0)
            return base + offset
        return self._parse_number(token)

    def _is_symbolic(self, token: str, symbols: SymbolTable) -> bool:
        try:
            self._parse_number(token)
            return False
        except AssemblerError:
            pass
        return True

    # -- per-instruction encoders -----------------------------------------------
    def _encode_instruction(self, item: _Item,
                            symbols: SymbolTable) -> list[int]:
        mnemonic = item.mnemonic
        ops = item.operands

        if mnemonic == "nop":
            return [enc.pack_type_a(enc.OP_OR, 0, 0, 0)]
        if mnemonic == "ret":
            return [enc.pack_type_b(enc.OP_RET, enc.RET_RTSD, 15, 8)]
        if mnemonic == "reti":
            return [enc.pack_type_b(enc.OP_RET, enc.RET_RTID, 14, 0)]
        if mnemonic in ("li", "la"):
            rd = self._parse_register(ops[0])
            value = self._resolve(ops[1], symbols)
            return [enc.pack_type_b(enc.OP_IMM, 0, 0, (value >> 16) & 0xFFFF),
                    enc.pack_type_b(enc.OP_ADDIK, rd, 0, value & 0xFFFF)]

        if mnemonic in _TYPE_A_THREE_REG:
            opcode, function = _TYPE_A_THREE_REG[mnemonic]
            rd = self._parse_register(ops[0])
            ra = self._parse_register(ops[1])
            rb = self._parse_register(ops[2])
            return [enc.pack_type_a(opcode, rd, ra, rb, function)]

        if mnemonic in _TYPE_B_REG_REG_IMM:
            opcode = _TYPE_B_REG_REG_IMM[mnemonic]
            rd = self._parse_register(ops[0])
            ra = self._parse_register(ops[1])
            value = self._resolve(ops[2], symbols)
            self._check_imm16(value, item)
            return [enc.pack_type_b(opcode, rd, ra, value & 0xFFFF)]

        if mnemonic in _BARREL_SHIFT_IMM:
            rd = self._parse_register(ops[0])
            ra = self._parse_register(ops[1])
            amount = self._resolve(ops[2], symbols) & 0x1F
            return [enc.pack_type_b(enc.OP_BSI, rd, ra,
                                    _BARREL_SHIFT_IMM[mnemonic] | amount)]

        if mnemonic in _SHIFT_ONE_REG:
            rd = self._parse_register(ops[0])
            ra = self._parse_register(ops[1])
            return [(enc.OP_SHIFT & 0x3F) << 26 | rd << 21 | ra << 16
                    | _SHIFT_ONE_REG[mnemonic]]

        if mnemonic == "mfs":
            rd = self._parse_register(ops[0])
            spr = _SPECIAL_REGISTERS[ops[1].strip().lower()]
            return [enc.pack_type_b(enc.OP_MSR, rd, 0, enc.MSR_MFS | spr)]
        if mnemonic == "mts":
            spr = _SPECIAL_REGISTERS[ops[0].strip().lower()]
            ra = self._parse_register(ops[1])
            return [enc.pack_type_b(enc.OP_MSR, 0, ra, enc.MSR_MTS | spr)]
        if mnemonic == "msrset":
            rd = self._parse_register(ops[0])
            value = self._resolve(ops[1], symbols) & 0x3FFF
            return [enc.pack_type_b(enc.OP_MSR, rd, 0, value)]
        if mnemonic == "msrclr":
            rd = self._parse_register(ops[0])
            value = self._resolve(ops[1], symbols) & 0x3FFF
            return [enc.pack_type_b(enc.OP_MSR, rd, 1, value)]

        if mnemonic in ("rtsd", "rtid", "rtbd", "rted"):
            flavour = {"rtsd": enc.RET_RTSD, "rtid": enc.RET_RTID,
                       "rtbd": enc.RET_RTBD, "rted": enc.RET_RTED}[mnemonic]
            ra = self._parse_register(ops[0])
            value = self._resolve(ops[1], symbols)
            return [enc.pack_type_b(enc.OP_RET, flavour, ra, value & 0xFFFF)]

        if mnemonic == "imm":
            value = self._resolve(ops[0], symbols)
            return [enc.pack_type_b(enc.OP_IMM, 0, 0, value & 0xFFFF)]

        if mnemonic in _BRANCH_FLAVOURS:
            return self._encode_unconditional_branch(mnemonic, ops, item,
                                                     symbols)
        if self._is_conditional(mnemonic):
            return self._encode_conditional_branch(mnemonic, ops, item,
                                                   symbols)

        raise AssemblerError(f"line {item.line_number}: unknown mnemonic "
                             f"{mnemonic!r}")

    def _encode_unconditional_branch(self, mnemonic: str, ops: tuple,
                                     item: _Item,
                                     symbols: SymbolTable) -> list[int]:
        absolute, link, delay = _BRANCH_FLAVOURS[mnemonic]
        immediate_form = "i" in mnemonic[2:]
        ra_code = ((enc.BR_ABS if absolute else 0)
                   | (enc.BR_LINK if link else 0)
                   | (enc.BR_DELAY if delay else 0))
        if link:
            rd = self._parse_register(ops[0])
            target_token = ops[1]
        else:
            rd = 0
            target_token = ops[0]
        if not immediate_form:
            rb = self._parse_register(target_token)
            return [enc.pack_type_a(enc.OP_BR, rd, ra_code, rb)]
        symbolic = self._is_symbolic(target_token, symbols)
        target = self._resolve(target_token, symbols)
        if symbolic and item.compact_branch:
            offset = target - item.address
            return [enc.pack_type_b(enc.OP_BRI, rd, ra_code,
                                    offset & 0xFFFF)]
        if symbolic:
            branch_address = item.address + 4   # the word after the IMM
            value = target if absolute else target - branch_address
            return [enc.pack_type_b(enc.OP_IMM, 0, 0, (value >> 16) & 0xFFFF),
                    enc.pack_type_b(enc.OP_BRI, rd, ra_code, value & 0xFFFF)]
        self._check_imm16(target, item)
        return [enc.pack_type_b(enc.OP_BRI, rd, ra_code, target & 0xFFFF)]

    def _encode_conditional_branch(self, mnemonic: str, ops: tuple,
                                   item: _Item,
                                   symbols: SymbolTable) -> list[int]:
        base = mnemonic[1:]
        delay = base.endswith("d")
        if delay:
            base = base[:-1]
        immediate_form = base.endswith("i")
        if immediate_form:
            base = base[:-1]
        if base not in _CONDITION_CODES:
            raise AssemblerError(f"line {item.line_number}: unknown branch "
                                 f"condition in {mnemonic!r}")
        rd_code = _CONDITION_CODES[base] | (enc.COND_DELAY if delay else 0)
        ra = self._parse_register(ops[0])
        if not immediate_form:
            rb = self._parse_register(ops[1])
            return [enc.pack_type_a(enc.OP_BCC, rd_code, ra, rb)]
        target_token = ops[1]
        symbolic = self._is_symbolic(target_token, symbols)
        target = self._resolve(target_token, symbols)
        if symbolic and item.compact_branch:
            offset = target - item.address
            return [enc.pack_type_b(enc.OP_BCCI, rd_code, ra,
                                    offset & 0xFFFF)]
        if symbolic:
            branch_address = item.address + 4
            offset = target - branch_address
            return [enc.pack_type_b(enc.OP_IMM, 0, 0, (offset >> 16) & 0xFFFF),
                    enc.pack_type_b(enc.OP_BCCI, rd_code, ra,
                                    offset & 0xFFFF)]
        self._check_imm16(target, item)
        return [enc.pack_type_b(enc.OP_BCCI, rd_code, ra, target & 0xFFFF)]

    @staticmethod
    def _check_imm16(value: int, item: _Item) -> None:
        if not -32768 <= value <= 0xFFFF:
            raise AssemblerError(
                f"line {item.line_number}: immediate {value:#x} does not fit "
                f"in 16 bits (use li/la or an imm prefix)")


def _merge_chunks(chunks: list[tuple[int, bytes]]) -> list[tuple[int,
                                                                 bytearray]]:
    """Merge address-contiguous chunks into segments."""
    segments: list[tuple[int, bytearray]] = []
    for address, data in sorted(chunks, key=lambda pair: pair[0]):
        if segments:
            base, existing = segments[-1]
            if base + len(existing) == address:
                existing.extend(data)
                continue
            if address < base + len(existing):
                raise AssemblerError(
                    f"overlapping assembly output at {address:#x}")
        segments.append((address, bytearray(data)))
    return segments


def assemble(source: str, origin: int = 0) -> Program:
    """Convenience wrapper: assemble ``source`` with a fresh assembler."""
    return Assembler().assemble(source, origin)
