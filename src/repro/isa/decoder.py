"""Instruction decoder: 32-bit words to structured :class:`Instruction`.

The decoder is deliberately table-driven and free of execution semantics;
the ISS (``repro.iss.core``) consumes the decoded form, and the
disassembler renders it back to text.  Keeping decode separate also lets
the ISS cache decoded instructions, mirroring how a real C++ ISS avoids
re-decoding hot loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kernel.errors import DecodeError
from . import encoding as enc


@dataclass(frozen=True)
class Instruction:
    """A decoded MicroBlaze instruction."""

    word: int
    opcode: int
    mnemonic: str
    fmt: enc.Format
    rd: int
    ra: int
    rb: int
    imm: int            # unsigned 16-bit immediate field (type B)
    function: int       # low function field (type A)
    #: True when the instruction has a delay slot.
    delay_slot: bool = False
    #: Branch condition ('eq', 'ne', ...) for conditional branches.
    condition: Optional[str] = None
    #: True for absolute (rather than PC-relative) branch targets.
    absolute: bool = False
    #: True when the branch links the return address into ``rd``.
    link: bool = False

    @property
    def is_branch(self) -> bool:
        """True for any control-transfer instruction."""
        return self.opcode in (enc.OP_BR, enc.OP_BRI, enc.OP_BCC,
                               enc.OP_BCCI, enc.OP_RET)

    @property
    def is_memory_access(self) -> bool:
        """True for loads and stores."""
        return self.is_load or self.is_store

    @property
    def is_load(self) -> bool:
        """True for load instructions."""
        return self.opcode in (enc.OP_LBU, enc.OP_LHU, enc.OP_LW,
                               enc.OP_LBUI, enc.OP_LHUI, enc.OP_LWI)

    @property
    def is_store(self) -> bool:
        """True for store instructions."""
        return self.opcode in (enc.OP_SB, enc.OP_SH, enc.OP_SW,
                               enc.OP_SBI, enc.OP_SHI, enc.OP_SWI)

    @property
    def access_size(self) -> int:
        """Size in bytes of the memory access (1, 2 or 4); 0 otherwise."""
        if self.opcode in (enc.OP_LBU, enc.OP_LBUI, enc.OP_SB, enc.OP_SBI):
            return 1
        if self.opcode in (enc.OP_LHU, enc.OP_LHUI, enc.OP_SH, enc.OP_SHI):
            return 2
        if self.opcode in (enc.OP_LW, enc.OP_LWI, enc.OP_SW, enc.OP_SWI):
            return 4
        return 0

    def __str__(self) -> str:
        return f"{self.mnemonic} (word={self.word:#010x})"


_ARITH_MNEMONICS = {
    enc.OP_ADD: "add", enc.OP_RSUB: "rsub", enc.OP_ADDC: "addc",
    enc.OP_RSUBC: "rsubc", enc.OP_ADDK: "addk", enc.OP_RSUBK: "rsubk",
    enc.OP_ADDKC: "addkc", enc.OP_RSUBKC: "rsubkc",
    enc.OP_ADDI: "addi", enc.OP_RSUBI: "rsubi", enc.OP_ADDIC: "addic",
    enc.OP_RSUBIC: "rsubic", enc.OP_ADDIK: "addik", enc.OP_RSUBIK: "rsubik",
    enc.OP_ADDIKC: "addikc", enc.OP_RSUBIKC: "rsubikc",
}

_LOGIC_MNEMONICS = {
    enc.OP_OR: "or", enc.OP_AND: "and", enc.OP_XOR: "xor",
    enc.OP_ANDN: "andn", enc.OP_ORI: "ori", enc.OP_ANDI: "andi",
    enc.OP_XORI: "xori", enc.OP_ANDNI: "andni",
}

_MEMORY_MNEMONICS = {
    enc.OP_LBU: "lbu", enc.OP_LHU: "lhu", enc.OP_LW: "lw",
    enc.OP_SB: "sb", enc.OP_SH: "sh", enc.OP_SW: "sw",
    enc.OP_LBUI: "lbui", enc.OP_LHUI: "lhui", enc.OP_LWI: "lwi",
    enc.OP_SBI: "sbi", enc.OP_SHI: "shi", enc.OP_SWI: "swi",
}

_SHIFT_MNEMONICS = {
    enc.SHIFT_SRA: "sra", enc.SHIFT_SRC: "src", enc.SHIFT_SRL: "srl",
    enc.SHIFT_SEXT8: "sext8", enc.SHIFT_SEXT16: "sext16",
}

_CONDITIONS = {
    enc.COND_EQ: "eq", enc.COND_NE: "ne", enc.COND_LT: "lt",
    enc.COND_LE: "le", enc.COND_GT: "gt", enc.COND_GE: "ge",
}

_RET_MNEMONICS = {
    enc.RET_RTSD: "rtsd", enc.RET_RTID: "rtid",
    enc.RET_RTBD: "rtbd", enc.RET_RTED: "rted",
}


def decode(word: int) -> Instruction:
    """Decode one instruction word.

    Raises :class:`~repro.kernel.errors.DecodeError` for opcodes outside the
    implemented subset.
    """
    word &= 0xFFFF_FFFF
    opcode = enc.opcode_of(word)
    fmt = enc.format_of(opcode)
    rd = enc.rd_of(word)
    ra = enc.ra_of(word)
    rb = enc.rb_of(word)
    imm = enc.imm_of(word)
    function = enc.function_of(word)

    common = dict(word=word, opcode=opcode, fmt=fmt, rd=rd, ra=ra, rb=rb,
                  imm=imm, function=function)

    # -- arithmetic ------------------------------------------------------------
    if opcode in _ARITH_MNEMONICS:
        mnemonic = _ARITH_MNEMONICS[opcode]
        if opcode == enc.OP_RSUBK and function in (enc.CMP_FUNC,
                                                   enc.CMPU_FUNC):
            mnemonic = "cmp" if function == enc.CMP_FUNC else "cmpu"
        return Instruction(mnemonic=mnemonic, **common)

    # -- logic --------------------------------------------------------------------
    if opcode in _LOGIC_MNEMONICS:
        return Instruction(mnemonic=_LOGIC_MNEMONICS[opcode], **common)

    # -- multiply / divide / barrel shift --------------------------------------------
    if opcode == enc.OP_MUL:
        return Instruction(mnemonic="mul", **common)
    if opcode == enc.OP_MULI:
        return Instruction(mnemonic="muli", **common)
    if opcode == enc.OP_IDIV:
        mnemonic = "idivu" if function & 0x2 else "idiv"
        return Instruction(mnemonic=mnemonic, **common)
    if opcode == enc.OP_BS:
        mnemonic = {enc.BS_SRL: "bsrl", enc.BS_SRA: "bsra",
                    enc.BS_SLL: "bsll"}.get(function & 0x600)
        if mnemonic is None:
            raise DecodeError(f"unknown barrel shift function {function:#x}")
        return Instruction(mnemonic=mnemonic, **common)
    if opcode == enc.OP_BSI:
        mnemonic = {enc.BS_SRL: "bsrli", enc.BS_SRA: "bsrai",
                    enc.BS_SLL: "bslli"}.get(imm & 0x600)
        if mnemonic is None:
            raise DecodeError(f"unknown barrel shift function {imm:#x}")
        return Instruction(mnemonic=mnemonic, **common)

    # -- single-bit shifts / sign extension ---------------------------------------------
    if opcode == enc.OP_SHIFT:
        func16 = enc.function16_of(word)
        mnemonic = _SHIFT_MNEMONICS.get(func16)
        if mnemonic is None:
            raise DecodeError(f"unknown shift function {func16:#06x}")
        return Instruction(mnemonic=mnemonic, **common)

    # -- special registers ----------------------------------------------------------------
    if opcode == enc.OP_MSR:
        func16 = enc.function16_of(word)
        if func16 & 0xC000 == 0xC000:
            mnemonic = "mts"
        elif func16 & 0x8000:
            mnemonic = "mfs"
        elif ra & 0x1:
            mnemonic = "msrclr"
        else:
            mnemonic = "msrset"
        return Instruction(mnemonic=mnemonic, **common)

    # -- unconditional branches ---------------------------------------------------------------
    if opcode in (enc.OP_BR, enc.OP_BRI):
        delay = bool(ra & enc.BR_DELAY)
        absolute = bool(ra & enc.BR_ABS)
        link = bool(ra & enc.BR_LINK)
        mnemonic = "br"
        if absolute:
            mnemonic += "a"
        if link:
            mnemonic += "l"
        if opcode == enc.OP_BRI:
            mnemonic += "i"
        if delay:
            mnemonic += "d"
        return Instruction(mnemonic=mnemonic, delay_slot=delay,
                           absolute=absolute, link=link, **common)

    # -- conditional branches -----------------------------------------------------------------
    if opcode in (enc.OP_BCC, enc.OP_BCCI):
        condition = _CONDITIONS.get(rd & 0xF)
        if condition is None:
            raise DecodeError(f"unknown branch condition {rd:#x}")
        delay = bool(rd & enc.COND_DELAY)
        mnemonic = f"b{condition}"
        if opcode == enc.OP_BCCI:
            mnemonic += "i"
        if delay:
            mnemonic += "d"
        return Instruction(mnemonic=mnemonic, delay_slot=delay,
                           condition=condition, **common)

    # -- returns / IMM prefix ----------------------------------------------------------------------
    if opcode == enc.OP_RET:
        mnemonic = _RET_MNEMONICS.get(rd)
        if mnemonic is None:
            raise DecodeError(f"unknown return flavour rd={rd:#x}")
        return Instruction(mnemonic=mnemonic, delay_slot=True, **common)
    if opcode == enc.OP_IMM:
        return Instruction(mnemonic="imm", **common)

    # -- memory ---------------------------------------------------------------------------------------
    if opcode in _MEMORY_MNEMONICS:
        return Instruction(mnemonic=_MEMORY_MNEMONICS[opcode], **common)

    raise DecodeError(f"unknown opcode {opcode:#04x} in word {word:#010x}")


class DecodedEntry:
    """One address-keyed entry of the ISS's decoded-program cache.

    Where :class:`DecodeCache` memoises *words*, a :class:`DecodedEntry`
    memoises one *program location*: the word fetched from ``pc``, its
    decoded form, a precompiled zero-argument closure executing it with
    operands already resolved, and everything the per-instruction hot path
    would otherwise recompute (mnemonic string, profile function name,
    memory-access classification).  Entries link forward into basic blocks
    through ``next_entry`` so straight-line code executes without even a
    dictionary lookup; the link carries the successor's ``pc`` guard, so a
    stale link can never execute the wrong location.

    ``valid`` flips to False when a store overwrites the cached word
    (self-modifying code) -- consumers must check it before executing a
    chained entry.  ``fetch_cycles``/``fetch_epoch`` let the
    temporally-decoupled wrapper reuse the protocol cycle annotation of
    the first fetch while the fetch routing (dispatcher toggles) is
    unchanged.
    """

    __slots__ = ("pc", "word", "instruction", "mnemonic", "execute",
                 "function_name", "is_load", "is_store", "is_imm",
                 "access_size", "delay_slot", "valid", "next_entry",
                 "fetch_cycles", "fetch_epoch", "falls_through", "block",
                 "ea", "rd")

    def __init__(self, pc: int, word: int, instruction: Instruction,
                 execute, function_name: Optional[str]) -> None:
        self.pc = pc
        self.word = word
        self.instruction = instruction
        self.mnemonic = instruction.mnemonic
        self.execute = execute
        self.function_name = function_name
        self.is_load = instruction.is_load
        self.is_store = instruction.is_store
        self.is_imm = instruction.mnemonic == "imm"
        self.access_size = instruction.access_size
        self.delay_slot = instruction.delay_slot
        self.valid = True
        self.next_entry: Optional["DecodedEntry"] = None
        self.fetch_cycles = -1
        self.fetch_epoch = -1
        #: True when executing can only advance the PC by 4: no branch,
        #: no IMM prefix, no memory access, no PC-reading special move.
        #: Set by the core, which knows the handler families.
        self.falls_through = False
        #: Cached straight-line block starting here (built by the wrapper).
        self.block = None
        #: Precompiled effective-address closure (loads/stores only; valid
        #: while no IMM prefix is active).  Set by the core.
        self.ea = None
        self.rd = instruction.rd

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DecodedEntry(pc={self.pc:#010x}, "
                f"mnemonic={self.mnemonic!r}, valid={self.valid})")


class DecodeCache:
    """A decoded-instruction cache keyed by instruction word.

    A real C++ ISS decodes each distinct word once; this cache gives the
    Python ISS the same property so the fetch path (the thing the paper's
    memory dispatcher accelerates) dominates, not Python-side decode.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self._cache: dict[int, Instruction] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, word: int) -> Instruction:
        """Decode ``word``, memoising the result."""
        cached = self._cache.get(word)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        instruction = decode(word)
        if len(self._cache) >= self.capacity:
            self._cache.clear()
        self._cache[word] = instruction
        return instruction

    def __len__(self) -> int:
        return len(self._cache)
