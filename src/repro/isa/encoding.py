"""MicroBlaze instruction encodings.

The MicroBlaze ISA uses two 32-bit instruction formats:

* **Type A** -- ``opcode[6] rd[5] ra[5] rb[5] function[11]``
* **Type B** -- ``opcode[6] rd[5] ra[5] imm[16]``

This module defines the opcode map for the subset implemented by the ISS
(sufficient for the synthetic uClinux boot workload: integer arithmetic,
logic, shifts, multiply, loads/stores, branches with and without delay
slots, ``IMM`` prefixes, special-register moves and interrupt returns), and
field packing/extraction helpers shared by the assembler, disassembler and
decoder.

Note on bit numbering: Xilinx documentation numbers bit 0 as the most
significant bit.  Here conventional little-endian bit numbering is used;
the byte-level encodings are identical.
"""

from __future__ import annotations

from enum import Enum

from ..datatypes import get_field, truncate


class Format(Enum):
    """Instruction format."""

    TYPE_A = "A"
    TYPE_B = "B"


# --------------------------------------------------------------------------- #
# Primary opcodes (bits 31..26)
# --------------------------------------------------------------------------- #
OP_ADD = 0x00
OP_RSUB = 0x01
OP_ADDC = 0x02
OP_RSUBC = 0x03
OP_ADDK = 0x04
OP_RSUBK = 0x05          # also CMP / CMPU via the function field
OP_ADDKC = 0x06
OP_RSUBKC = 0x07
OP_ADDI = 0x08
OP_RSUBI = 0x09
OP_ADDIC = 0x0A
OP_RSUBIC = 0x0B
OP_ADDIK = 0x0C
OP_RSUBIK = 0x0D
OP_ADDIKC = 0x0E
OP_RSUBIKC = 0x0F
OP_MUL = 0x10
OP_BS = 0x11             # barrel shift (BSRL / BSRA / BSLL)
OP_IDIV = 0x12
OP_MULI = 0x18
OP_BSI = 0x19            # barrel shift immediate
OP_OR = 0x20
OP_AND = 0x21
OP_XOR = 0x22
OP_ANDN = 0x23
OP_SHIFT = 0x24          # SRA / SRC / SRL / SEXT8 / SEXT16
OP_MSR = 0x25            # MFS / MTS / MSRSET / MSRCLR
OP_BR = 0x26             # unconditional branch, register target
OP_BCC = 0x27            # conditional branch, register target
OP_ORI = 0x28
OP_ANDI = 0x29
OP_XORI = 0x2A
OP_ANDNI = 0x2B
OP_IMM = 0x2C
OP_RET = 0x2D            # RTSD / RTID / RTBD / RTED
OP_BRI = 0x2E            # unconditional branch, immediate target
OP_BCCI = 0x2F           # conditional branch, immediate target
OP_LBU = 0x30
OP_LHU = 0x31
OP_LW = 0x32
OP_SB = 0x34
OP_SH = 0x35
OP_SW = 0x36
OP_LBUI = 0x38
OP_LHUI = 0x39
OP_LWI = 0x3A
OP_SBI = 0x3C
OP_SHI = 0x3D
OP_SWI = 0x3E

# --------------------------------------------------------------------------- #
# Secondary function codes
# --------------------------------------------------------------------------- #
# OP_SHIFT (0x24) low 16 bits select the operation.
SHIFT_SRA = 0x0001
SHIFT_SRC = 0x0021
SHIFT_SRL = 0x0041
SHIFT_SEXT8 = 0x0060
SHIFT_SEXT16 = 0x0061

# OP_RSUBK: bit0 of the function field turns RSUBK into CMP, bit1 into CMPU.
CMP_FUNC = 0x0001
CMPU_FUNC = 0x0003

# Barrel-shift function bits (bits 10..9 of the function field).
BS_SRL = 0x000    # logical right
BS_SRA = 0x200    # arithmetic right
BS_SLL = 0x400    # logical left

# OP_BR: the ``ra`` field encodes the branch flavour.
BR_PLAIN = 0x00      # BR   (relative)
BR_LINK = 0x04       # BRL  (relative, link)
BR_ABS = 0x08        # BRA  (absolute)
BR_ABS_LINK = 0x0C   # BRAL (absolute, link)
BR_DELAY = 0x10      # D bit: delay slot variants add this to the code above

# OP_BCC / OP_BCCI: the ``rd`` field encodes the condition.
COND_EQ = 0x00
COND_NE = 0x01
COND_LT = 0x02
COND_LE = 0x03
COND_GT = 0x04
COND_GE = 0x05
COND_DELAY = 0x10    # D bit

# OP_RET: the ``rd`` field selects the return flavour.
RET_RTSD = 0x10
RET_RTID = 0x11
RET_RTBD = 0x12
RET_RTED = 0x14

# OP_MSR: the function/imm field distinguishes MFS / MTS / MSRCLR / MSRSET.
MSR_MTS = 0xC000
MSR_MFS = 0x8000
MSR_MSRCLR = 0x0200
MSR_MSRSET = 0x0000

# Special-register numbers used with MFS/MTS.
SPR_PC = 0x0000
SPR_MSR = 0x0001
SPR_EAR = 0x0003
SPR_ESR = 0x0005

#: Vector addresses defined by the MicroBlaze architecture.
RESET_VECTOR = 0x00000000
INTERRUPT_VECTOR = 0x00000010
EXCEPTION_VECTOR = 0x00000020


# --------------------------------------------------------------------------- #
# field packing / extraction
# --------------------------------------------------------------------------- #
def pack_type_a(opcode: int, rd: int, ra: int, rb: int,
                function: int = 0) -> int:
    """Assemble a type-A instruction word."""
    _check_register(rd, "rd")
    _check_register(ra, "ra")
    _check_register(rb, "rb")
    if not 0 <= function < (1 << 11):
        raise ValueError(f"function field out of range: {function:#x}")
    return ((opcode & 0x3F) << 26 | rd << 21 | ra << 16 | rb << 11
            | function)


def pack_type_b(opcode: int, rd: int, ra: int, imm: int) -> int:
    """Assemble a type-B instruction word (16-bit immediate, truncated)."""
    _check_register(rd, "rd")
    _check_register(ra, "ra")
    return ((opcode & 0x3F) << 26 | rd << 21 | ra << 16
            | truncate(imm, 16))


def opcode_of(word: int) -> int:
    """Primary opcode of an instruction word."""
    return get_field(word, 31, 26)


def rd_of(word: int) -> int:
    """Destination register field."""
    return get_field(word, 25, 21)


def ra_of(word: int) -> int:
    """First source register field."""
    return get_field(word, 20, 16)


def rb_of(word: int) -> int:
    """Second source register field (type A)."""
    return get_field(word, 15, 11)


def imm_of(word: int) -> int:
    """16-bit immediate field (type B), unsigned."""
    return get_field(word, 15, 0)


def function_of(word: int) -> int:
    """Low 11-bit function field (type A)."""
    return get_field(word, 10, 0)


def function16_of(word: int) -> int:
    """Low 16 bits, used by shift/MSR instructions as an extended function."""
    return get_field(word, 15, 0)


def _check_register(index: int, label: str) -> None:
    if not 0 <= index < 32:
        raise ValueError(f"register field {label} out of range: {index}")


#: Opcodes whose instructions are type B (carry a 16-bit immediate).
TYPE_B_OPCODES = frozenset({
    OP_ADDI, OP_RSUBI, OP_ADDIC, OP_RSUBIC, OP_ADDIK, OP_RSUBIK, OP_ADDIKC,
    OP_RSUBIKC, OP_MULI, OP_BSI, OP_ORI, OP_ANDI, OP_XORI, OP_ANDNI, OP_IMM,
    OP_RET, OP_BRI, OP_BCCI, OP_LBUI, OP_LHUI, OP_LWI, OP_SBI, OP_SHI,
    OP_SWI, OP_MSR,
})


def format_of(opcode: int) -> Format:
    """Whether ``opcode`` is a type-A or type-B instruction."""
    return Format.TYPE_B if opcode in TYPE_B_OPCODES else Format.TYPE_A
