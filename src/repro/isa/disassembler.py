"""Disassembler: decoded instructions back to readable assembly text.

Used by the debugging examples and by the ISS trace facility, and in tests
as the round-trip check against the assembler.
"""

from __future__ import annotations

from typing import Optional

from ..datatypes import to_signed
from . import encoding as enc
from .decoder import Instruction, decode
from .symbols import SymbolTable

_SPR_NAMES = {
    enc.SPR_PC: "rpc",
    enc.SPR_MSR: "rmsr",
    enc.SPR_EAR: "rear",
    enc.SPR_ESR: "resr",
}


def disassemble_word(word: int, address: int = 0,
                     symbols: Optional[SymbolTable] = None) -> str:
    """Disassemble one instruction word."""
    return format_instruction(decode(word), address, symbols)


def format_instruction(instruction: Instruction, address: int = 0,
                       symbols: Optional[SymbolTable] = None) -> str:
    """Render a decoded instruction as assembly text."""
    mnemonic = instruction.mnemonic
    rd, ra, rb = instruction.rd, instruction.ra, instruction.rb
    simm = to_signed(instruction.imm, 16)

    if mnemonic == "imm":
        return f"imm 0x{instruction.imm:04x}"
    if mnemonic in ("cmp", "cmpu"):
        return f"{mnemonic} r{rd}, r{ra}, r{rb}"
    if mnemonic in ("sra", "src", "srl", "sext8", "sext16"):
        return f"{mnemonic} r{rd}, r{ra}"
    if mnemonic == "mfs":
        spr = _SPR_NAMES.get(instruction.imm & 0x3FFF, "rpc")
        return f"mfs r{rd}, {spr}"
    if mnemonic == "mts":
        spr = _SPR_NAMES.get(instruction.imm & 0x3FFF, "rpc")
        return f"mts {spr}, r{ra}"
    if mnemonic in ("msrset", "msrclr"):
        return f"{mnemonic} r{rd}, 0x{instruction.imm & 0x3FFF:x}"
    if mnemonic in ("rtsd", "rtid", "rtbd", "rted"):
        return f"{mnemonic} r{ra}, {simm}"
    if mnemonic in ("bsrli", "bsrai", "bslli"):
        return f"{mnemonic} r{rd}, r{ra}, {instruction.imm & 0x1F}"

    if instruction.opcode in (enc.OP_BR,):
        if instruction.link:
            return f"{mnemonic} r{rd}, r{rb}"
        return f"{mnemonic} r{rb}"
    if instruction.opcode in (enc.OP_BRI,):
        target = _branch_target(instruction, address)
        label = _label_for(target, symbols)
        if instruction.link:
            return f"{mnemonic} r{rd}, {label}"
        return f"{mnemonic} {label}"
    if instruction.opcode == enc.OP_BCC:
        return f"{mnemonic} r{ra}, r{rb}"
    if instruction.opcode == enc.OP_BCCI:
        target = _branch_target(instruction, address)
        return f"{mnemonic} r{ra}, {_label_for(target, symbols)}"

    if instruction.fmt is enc.Format.TYPE_B:
        return f"{mnemonic} r{rd}, r{ra}, {simm}"
    return f"{mnemonic} r{rd}, r{ra}, r{rb}"


def _branch_target(instruction: Instruction, address: int) -> int:
    simm = to_signed(instruction.imm, 16)
    if instruction.absolute:
        return instruction.imm
    return (address + simm) & 0xFFFF_FFFF


def _label_for(target: int, symbols: Optional[SymbolTable]) -> str:
    if symbols is not None:
        names = symbols.names_at(target)
        if names:
            return names[0]
    return f"0x{target:08x}"


def disassemble_range(read_word, start: int, count: int,
                      symbols: Optional[SymbolTable] = None) -> list[str]:
    """Disassemble ``count`` words starting at ``start``.

    ``read_word(address)`` supplies instruction words (e.g. a memory model's
    debug read).  Undecodable words are rendered as ``.word`` directives.
    """
    lines = []
    for index in range(count):
        address = start + 4 * index
        word = read_word(address)
        try:
            text = disassemble_word(word, address, symbols)
        except Exception:
            text = f".word 0x{word:08x}"
        label_names = symbols.names_at(address) if symbols else ()
        prefix = f"{label_names[0]}: " if label_names else ""
        lines.append(f"{address:08x}: {prefix}{text}")
    return lines
